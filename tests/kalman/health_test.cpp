// Numerical health monitor + recovery ladder (kalman/health.hpp): every
// fault class must be *detected within the step that produced it* and
// recovered without a single NaN reaching the caller, with the action
// counted both in HealthStats and the kalmmind.kf.recoveries_total.*
// telemetry counters.  Re-convergence is checked against the float64
// reference (kalman/reference.hpp) on the clean tail of each stream.
#include "kalman/health.hpp"

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kalman/factory.hpp"
#include "kalman/filter.hpp"
#include "kalman/interleaved.hpp"
#include "kalman/reference.hpp"
#include "fixedpoint/fixed.hpp"
#include "telemetry/telemetry.hpp"
#include "kalman_test_util.hpp"
#if defined(KALMMIND_FAULTS)
#include "testing/fault_injection.hpp"
#endif

namespace kalmmind::kalman {
namespace {

using linalg::Matrix;
using linalg::Vector;

// Counter assertions are skipped when telemetry is compiled out (the
// KALMMIND_TELEMETRY=OFF CI job): every counter then reads a constant 0.
std::uint64_t recovery_counter(const std::string& action) {
  return telemetry::MetricsRegistry::global()
      .counter("kalmmind.kf.recoveries_total." + action)
      .value();
}

std::uint64_t faults_counter() {
  return telemetry::MetricsRegistry::global()
      .counter("kalmmind.kf.faults_detected_total")
      .value();
}

FilterOptions health_on() {
  FilterOptions opts;
  opts.health.enabled = true;
  return opts;
}

void expect_finite(const Vector<double>& x, std::size_t step) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_TRUE(std::isfinite(x[i])) << "step " << step << " dim " << i;
  }
}

TEST(KalmanHealthTest, ConfigRejectsNonsenseThresholds) {
  HealthConfig bad;
  bad.enabled = true;
  bad.max_state_abs = 0.0;
  EXPECT_FALSE(bad.check().ok());

  bad = HealthConfig{};
  bad.enabled = true;
  bad.newton_residual_limit = 0.0;
  EXPECT_FALSE(bad.check().ok());

  bad = HealthConfig{};
  bad.enabled = true;
  bad.innovation_gate_sigma = -1.0;
  EXPECT_FALSE(bad.check().ok());

  bad = HealthConfig{};
  bad.enabled = true;
  bad.deescalate_after = 0;
  EXPECT_FALSE(bad.check().ok());

  // Disabled configs are not validated field-by-field: the monitor is off.
  bad.enabled = false;
  EXPECT_TRUE(bad.check().ok());

  // The filter constructor goes through the same check().
  FilterOptions opts;
  opts.health.enabled = true;
  opts.health.max_state_abs = -1.0;
  const auto model = testing::small_model(4);
  EXPECT_THROW(KalmanFilter<double>(
                   model, make_inverse_strategy<double>("gauss", {}), opts),
               std::invalid_argument);
}

TEST(KalmanHealthTest, CleanStreamIsBitIdenticalWithMonitoringOn) {
  // The clean path must be observation-only: enabling health (gate off)
  // cannot perturb a single bit of the decode.
  const auto model = testing::small_model(5);
  const auto zs = testing::simulate_measurements(model, 60);

  StrategyParams<double> params;
  params.interleave = {3, 2, SeedPolicy::kPreviousIteration};
  KalmanFilter<double> plain(
      model, make_inverse_strategy<double>("interleaved", params));
  KalmanFilter<double> monitored(
      model, make_inverse_strategy<double>("interleaved", params),
      health_on());

  for (std::size_t n = 0; n < zs.size(); ++n) {
    const Vector<double>& a = plain.step(zs[n]);
    const Vector<double>& b = monitored.step(zs[n]);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "step " << n << " dim " << i;
    }
  }
  EXPECT_EQ(monitored.health().faulty_steps, 0u);
  EXPECT_EQ(monitored.health().escalation_level, 0u);
}

TEST(KalmanHealthTest, ProbeResidualAcceptsGoodAndFlagsBadInverse) {
  HealthConfig cfg;
  cfg.enabled = true;
  NumericalHealthMonitor<double> monitor(cfg);
  monitor.begin_step();

  const Matrix<double> s = Matrix<double>::identity(4) * 2.0;
  const Matrix<double> good = Matrix<double>::identity(4) * 0.5;
  EXPECT_TRUE(monitor.approx_residual_ok(s, good));
  EXPECT_FALSE(monitor.stats().has(HealthFault::kResidualGrowth));

  // An inverse two orders of magnitude off blows the probe way past the
  // default limit of 1.0.
  const Matrix<double> bad = Matrix<double>::identity(4) * 100.0;
  EXPECT_FALSE(monitor.approx_residual_ok(s, bad));
  EXPECT_TRUE(monitor.stats().has(HealthFault::kResidualGrowth));
}

TEST(KalmanHealthTest, BadNewtonSeedIsRepairedWithinTheSameStep) {
  // calc_freq=0 calculates only at iteration 0.  A huge P0 makes S_0 (and
  // its inverse, the eq. (5) seed) wildly out of scale with S_1, so the
  // iteration-1 approximation lands far outside the eq. (3) basin.  The
  // probe must catch it and re-run the calculation path before the gain is
  // formed — the output stays reference-grade instead of diverging.
  auto model = testing::small_model(4);
  model.p0 = Matrix<double>::identity(2) * 1e6;
  model.validate();
  const auto zs = testing::simulate_measurements(model, 4);

  FilterOptions opts;
  opts.health.enabled = true;
  opts.health.newton_residual_limit = 0.5;
  // The plain (non-Joseph) update on a 1e6-scale P rounds asymmetrically;
  // that separate fault class is not under test here.
  opts.health.covariance_symmetry_tol = 1e-3;
  auto strategy = std::make_unique<InterleavedStrategy<double>>(
      CalcMethod::kGauss, InterleaveConfig{0, 1, SeedPolicy::kLastCalculated});
  KalmanFilter<double> filter(model, std::move(strategy), opts);

  filter.step(zs[0]);
  EXPECT_EQ(filter.last_inverse_event().path, InversePath::kCalculation);
  EXPECT_EQ(filter.health().total(RecoveryAction::kForceCalculation), 0u);

  const std::uint64_t forced_before = recovery_counter("force_calculation");
  filter.step(zs[1]);
  // The repair re-ran the exact inversion within step 1...
  EXPECT_EQ(filter.last_inverse_event().path, InversePath::kCalculation);
  EXPECT_TRUE(filter.health().has(HealthFault::kResidualGrowth));
  EXPECT_GE(filter.health().total(RecoveryAction::kForceCalculation), 1u);
  if constexpr (telemetry::kCompiledIn) {
    EXPECT_GE(recovery_counter("force_calculation"), forced_before + 1);
  }
  expect_finite(filter.state(), 1);

  // ...so the decode matches the per-step reference closely.
  KalmanFilter<double> reference = make_reference_filter(model);
  reference.step(zs[0]);
  const Vector<double>& ref = reference.step(zs[1]);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(filter.state()[i], ref[i], 1e-5) << "dim " << i;
  }
}

TEST(KalmanHealthTest, LadderClimbsEveryRungOnAnInterleavedStrategy) {
  const auto model = testing::small_model(3, 5);
  FilterOptions opts;
  opts.health.enabled = true;
  opts.health.max_state_abs = 1e3;

  auto strategy = std::make_unique<InterleavedStrategy<double>>(
      CalcMethod::kGauss,
      InterleaveConfig{4, 2, SeedPolicy::kPreviousIteration});
  InterleavedStrategy<double>* strat = strategy.get();
  KalmanFilter<double> filter(model, std::move(strategy), opts);

  const std::uint64_t before_force = recovery_counter("force_calculation");
  const std::uint64_t before_reseed = recovery_counter("reseed_policy0");
  const std::uint64_t before_reset = recovery_counter("covariance_reset");
  const std::uint64_t before_sskf = recovery_counter("sskf_fallback");
  const std::uint64_t before_faults = faults_counter();

  Vector<double> rail(3);
  for (std::size_t i = 0; i < rail.size(); ++i) rail[i] = 1e12;

  // Step 1: the railed measurement explodes the update -> rung 1.
  expect_finite(filter.step(rail), 0);
  EXPECT_TRUE(filter.health().has(HealthFault::kStateExploded));
  EXPECT_EQ(filter.health().escalation_level, 1u);
  EXPECT_EQ(filter.health().total(RecoveryAction::kForceCalculation), 1u);

  // Step 2: still railed -> rung 2 pins the seed policy to last-calculated.
  expect_finite(filter.step(rail), 1);
  EXPECT_EQ(filter.health().escalation_level, 2u);
  EXPECT_EQ(filter.health().total(RecoveryAction::kReseedPolicy0), 1u);
  EXPECT_EQ(strat->config().policy, SeedPolicy::kLastCalculated);

  // Step 3: rung 3 resets the covariance and the strategy.
  expect_finite(filter.step(rail), 2);
  EXPECT_EQ(filter.health().escalation_level, 3u);
  EXPECT_EQ(filter.health().total(RecoveryAction::kCovarianceReset), 1u);

  // Step 4: rung 4 engages the steady-state constant-gain fallback.
  expect_finite(filter.step(rail), 3);
  EXPECT_EQ(filter.health().escalation_level, 4u);
  EXPECT_EQ(filter.health().total(RecoveryAction::kSskfFallback), 1u);
  EXPECT_TRUE(filter.health().fallback_active);

  // Step 5: fallback path; the railed innovation is still contained.
  expect_finite(filter.step(rail), 4);
  EXPECT_EQ(filter.last_inverse_event().path, InversePath::kNone);
  EXPECT_TRUE(filter.health().fallback_active);
  EXPECT_EQ(filter.health().faulty_steps, 5u);

  if constexpr (telemetry::kCompiledIn) {
    EXPECT_EQ(recovery_counter("force_calculation"), before_force + 1);
    EXPECT_EQ(recovery_counter("reseed_policy0"), before_reseed + 1);
    EXPECT_EQ(recovery_counter("covariance_reset"), before_reset + 1);
    EXPECT_EQ(recovery_counter("sskf_fallback"), before_sskf + 1);
    EXPECT_GT(faults_counter(), before_faults);
  }

  // The fallback is sticky until an explicit reset.
  filter.reset();
  EXPECT_FALSE(filter.health().fallback_active);
  EXPECT_EQ(filter.health().escalation_level, 0u);
  EXPECT_EQ(filter.health().total(RecoveryAction::kSskfFallback), 0u);
}

TEST(KalmanHealthTest, LadderSkipsRungsAConstantStrategyCannotHonor) {
  // A preloaded constant-inverse strategy has nothing to force or reseed
  // (request_calculation/harden_seed_policy both refuse): the ladder must
  // jump straight to the covariance reset and then the SSKF fallback.
  const auto model = testing::small_model(4);
  FilterOptions opts;
  opts.health.enabled = true;
  opts.health.max_state_abs = 1e3;
  StrategyParams<double> params;
  params.preloaded_inverse = solve_steady_state(model).s_inv;
  KalmanFilter<double> filter(
      model, make_inverse_strategy<double>("sskf", params), opts);

  Vector<double> rail(4);
  for (std::size_t i = 0; i < rail.size(); ++i) rail[i] = 1e12;

  expect_finite(filter.step(rail), 0);
  EXPECT_EQ(filter.health().escalation_level, 3u);
  EXPECT_EQ(filter.health().total(RecoveryAction::kForceCalculation), 0u);
  EXPECT_EQ(filter.health().total(RecoveryAction::kReseedPolicy0), 0u);
  EXPECT_EQ(filter.health().total(RecoveryAction::kCovarianceReset), 1u);

  expect_finite(filter.step(rail), 1);
  EXPECT_EQ(filter.health().escalation_level, 4u);
  EXPECT_TRUE(filter.health().fallback_active);
}

TEST(KalmanHealthTest, LadderDeescalatesAfterConsecutiveHealthySteps) {
  const auto model = testing::small_model(4);
  const auto zs = testing::simulate_measurements(model, 12);
  FilterOptions opts;
  opts.health.enabled = true;
  opts.health.max_state_abs = 1e3;
  opts.health.deescalate_after = 4;

  StrategyParams<double> params;
  params.interleave = {3, 2, SeedPolicy::kPreviousIteration};
  KalmanFilter<double> filter(
      model, make_inverse_strategy<double>("interleaved", params), opts);

  Vector<double> rail(4);
  for (std::size_t i = 0; i < rail.size(); ++i) rail[i] = 1e12;
  filter.step(rail);
  EXPECT_EQ(filter.health().escalation_level, 1u);

  for (std::size_t n = 0; n < 3; ++n) filter.step(zs[n]);
  EXPECT_EQ(filter.health().escalation_level, 1u);  // 3 healthy < 4
  filter.step(zs[3]);
  EXPECT_EQ(filter.health().escalation_level, 0u);  // 4th healthy step
  for (std::size_t n = 4; n < zs.size(); ++n) expect_finite(filter.step(zs[n]), n);
}

#if defined(KALMMIND_FAULTS)

TEST(KalmanHealthTest, NanSpikeSkipsMeasurementAndReconverges) {
  const auto model = testing::small_model(4);
  const auto clean = testing::simulate_measurements(model, 60);
  auto faulty = clean;

  testing::FaultInjector injector(42);
  injector.schedule({/*step=*/30, testing::FaultKind::kNanSpike,
                     /*index=*/2});

  FilterOptions opts;
  opts.health.enabled = true;
  StrategyParams<double> params;
  params.interleave = {3, 2, SeedPolicy::kPreviousIteration};
  KalmanFilter<double> filter(
      model, make_inverse_strategy<double>("interleaved", params), opts);

  const std::uint64_t skips_before = recovery_counter("skip_measurement");
  for (std::size_t n = 0; n < faulty.size(); ++n) {
    injector.corrupt(faulty[n], n);
    const Vector<double>& x = filter.step(faulty[n]);
    expect_finite(x, n);
    if (n == 30) {
      // Detected within the faulty step itself: predict-only recovery.
      EXPECT_TRUE(filter.health().has(HealthFault::kMeasurementNonFinite));
      EXPECT_EQ(filter.last_inverse_event().path, InversePath::kNone);
    }
  }
  EXPECT_EQ(filter.health().total(RecoveryAction::kSkipMeasurement), 1u);
  EXPECT_EQ(filter.health().faulty_steps, 1u);
  EXPECT_EQ(filter.health().escalation_level, 0u);
  if constexpr (telemetry::kCompiledIn) {
    EXPECT_EQ(recovery_counter("skip_measurement"), skips_before + 1);
  }

  // 30 clean steps later the decode has re-converged onto the reference
  // trajectory (which never saw the fault).
  const auto ref = run_reference(model, clean);
  const Vector<double>& x = filter.state();
  for (std::size_t i = 0; i < x.size(); ++i) {
    // The position state is a random walk (F_00 = 1), so the one-skipped-
    // update transient decays slowly; 30 clean steps bring it to O(1e-3).
    EXPECT_NEAR(x[i], ref.states.back()[i], 2e-2) << "dim " << i;
  }
}

// Measurements from a trajectory parked far from the origin, so a dropped
// (zeroed) channel produces an innovation tens of sigma wide.
std::vector<Vector<double>> offset_measurements(const KalmanModel<double>& m,
                                                std::size_t steps,
                                                std::uint64_t seed) {
  linalg::Rng rng(seed);
  std::normal_distribution<double> white(0.0, 1.0);
  Vector<double> x = m.x0;
  x[0] = 50.0;
  std::vector<Vector<double>> zs;
  zs.reserve(steps);
  for (std::size_t n = 0; n < steps; ++n) {
    Vector<double> fx;
    linalg::multiply_into(fx, m.f, x);
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = fx[i] + 0.03 * white(rng);
    Vector<double> z;
    linalg::multiply_into(z, m.h, x);
    for (std::size_t i = 0; i < z.size(); ++i) z[i] += 0.3 * white(rng);
    zs.push_back(std::move(z));
  }
  return zs;
}

TEST(KalmanHealthTest, InnovationGateContainsDropoutAndSaturation) {
  // Deterministic observation rows: channels 0/1 read +/- the position
  // (~50), channels 2/3 mix in the velocity.
  auto model = testing::small_model(4);
  model.h = Matrix<double>(4, 2, {1.0, 0.0, -1.0, 0.0, 0.5, 1.0, -0.5, 1.0});
  // A wide prior keeps the gate open during acquisition (the trajectory
  // starts ~50 away from x0): the bound is sigma * sqrt(S_ii) and S starts
  // at ~H P0 H^t.  As P converges the gate tightens onto the innovation
  // noise floor, which is what makes the dropout detectable at all.
  model.p0 = Matrix<double>::identity(2) * 400.0;
  model.validate();
  const auto clean = offset_measurements(model, 70, 11);
  auto faulty = clean;

  testing::FaultInjector injector(7);
  // Two dead electrodes at step 30, a railed amplifier at step 40.
  injector.schedule({30, testing::FaultKind::kChannelDropout, /*index=*/0,
                     /*bit=*/62, /*magnitude=*/0.0, /*count=*/2});
  injector.schedule({40, testing::FaultKind::kSaturation, /*index=*/3,
                     /*bit=*/62, /*magnitude=*/1e6});

  FilterOptions opts;
  opts.health.enabled = true;
  opts.health.innovation_gate_sigma = 8.0;
  StrategyParams<double> params;
  params.interleave = {3, 2, SeedPolicy::kPreviousIteration};
  KalmanFilter<double> filter(
      model, make_inverse_strategy<double>("interleaved", params), opts);

  const std::uint64_t gates_before = recovery_counter("gate_channels");
  for (std::size_t n = 0; n < faulty.size(); ++n) {
    injector.corrupt(faulty[n], n);
    expect_finite(filter.step(faulty[n]), n);
    if (n == 30 || n == 40) {
      EXPECT_TRUE(filter.health().has(HealthFault::kMeasurementOutlier))
          << "step " << n;
    }
  }
  EXPECT_EQ(filter.health().total(RecoveryAction::kGateChannels), 2u);
  EXPECT_EQ(filter.health().gated_channels, 3u);  // 2 dropout + 1 railed
  EXPECT_EQ(filter.health().faulty_steps, 2u);
  EXPECT_EQ(filter.health().escalation_level, 0u);  // gate != ladder
  if constexpr (telemetry::kCompiledIn) {
    EXPECT_EQ(recovery_counter("gate_channels"), gates_before + 2);
  }

  const auto ref = run_reference(model, clean);
  const Vector<double>& x = filter.state();
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], ref.states.back()[i], 0.1) << "dim " << i;
  }
}

TEST(KalmanHealthTest, FixedPointOverflowRecoversViaCovarianceReset) {
  using Fx = fixedpoint::Fx64;
  // Hand-quantized copy of the small position/velocity model with two
  // measurement channels (Q31.32 resolves all of these exactly enough).
  KalmanModel<Fx> model;
  model.f = Matrix<Fx>(2, 2, {Fx(1.0), Fx(0.1), Fx(0.0), Fx(0.95)});
  model.q = Matrix<Fx>(2, 2, {Fx(1e-3), Fx(0.0), Fx(0.0), Fx(1e-3)});
  model.h = Matrix<Fx>(2, 2, {Fx(1.0), Fx(0.2), Fx(-0.8), Fx(1.0)});
  model.r = Matrix<Fx>(2, 2, {Fx(2.0), Fx(0.0), Fx(0.0), Fx(2.0)});
  model.x0 = Vector<Fx>(2);
  model.p0 = Matrix<Fx>(2, 2, {Fx(0.5), Fx(0.0), Fx(0.0), Fx(0.5)});
  model.validate();

  FilterOptions opts;
  opts.health.enabled = true;
  opts.health.max_state_abs = 1e3;
  opts.health.deescalate_after = 4;
  KalmanFilter<Fx> filter(
      model,
      std::make_unique<CalculationStrategy<Fx>>(CalcMethod::kGauss), opts);

  Vector<Fx> z(2);
  z[0] = Fx(1.0);
  z[1] = Fx(0.5);
  for (int n = 0; n < 10; ++n) filter.step(z);
  EXPECT_EQ(filter.health().faulty_steps, 0u);

  // A raw-word upset in the top magnitude bits: the measurement jumps by
  // ~2^29 and the update explodes past max_state_abs every step.  The
  // Gauss strategy honors the force/reseed rungs trivially (steps 1-2),
  // step 3 resets the covariance, and step 4 would be the SSKF rung — but
  // fixed-point filters have no Riccati solve, so the ladder pins at the
  // covariance reset instead.
  const std::uint64_t resets_before = recovery_counter("covariance_reset");
  Vector<Fx> corrupted = z;
  corrupted[0].corrupt_raw(std::int64_t{1} << 61);
  for (int n = 0; n < 4; ++n) {
    const Vector<Fx>& x = filter.step(corrupted);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_LE(std::abs(linalg::to_double(x[i])), 1e3)
          << "bad step " << n << " dim " << i;
    }
  }
  EXPECT_GE(filter.health().faulty_steps, 4u);
  EXPECT_EQ(filter.health().escalation_level, 3u);
  EXPECT_EQ(filter.health().total(RecoveryAction::kCovarianceReset), 2u);
  EXPECT_EQ(filter.health().total(RecoveryAction::kSskfFallback), 0u);
  EXPECT_FALSE(filter.health().fallback_active);
  if constexpr (telemetry::kCompiledIn) {
    EXPECT_EQ(recovery_counter("covariance_reset"), resets_before + 2);
  }

  // Clean measurements de-escalate and the decode settles back down.
  for (int n = 0; n < 10; ++n) {
    const Vector<Fx>& x = filter.step(z);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_TRUE(std::isfinite(linalg::to_double(x[i])));
    }
  }
  EXPECT_EQ(filter.health().escalation_level, 0u);
}

#endif  // KALMMIND_FAULTS

}  // namespace
}  // namespace kalmmind::kalman
