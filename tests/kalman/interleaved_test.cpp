// The KalmMind interleaving technique: schedule semantics, both seed
// policies, the LITE and constant-inverse variants.
#include "kalman/interleaved.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../test_util.hpp"
#include "kalman/filter.hpp"
#include "kalman/reference.hpp"
#include "kalman_test_util.hpp"
#include "linalg/lu.hpp"
#include "linalg/random.hpp"

namespace kalmmind::kalman {
namespace {

using kalmmind::testing::inverse_error;
using kalmmind::testing::simulate_measurements;
using kalmmind::testing::small_model;
using linalg::Matrix;
using linalg::random_spd;
using linalg::Rng;

TEST(InterleaveConfigTest, CalcFreqZeroCalculatesOnlyAtIterationZero) {
  InterleaveConfig cfg{0, 1, SeedPolicy::kLastCalculated};
  EXPECT_TRUE(cfg.is_calculation_iteration(0));
  for (std::size_t n = 1; n < 20; ++n)
    EXPECT_FALSE(cfg.is_calculation_iteration(n)) << n;
}

TEST(InterleaveConfigTest, CalcFreqOneCalculatesEveryIteration) {
  InterleaveConfig cfg{1, 1, SeedPolicy::kLastCalculated};
  for (std::size_t n = 0; n < 10; ++n)
    EXPECT_TRUE(cfg.is_calculation_iteration(n)) << n;
}

TEST(InterleaveConfigTest, PeriodicSchedule) {
  InterleaveConfig cfg{3, 1, SeedPolicy::kLastCalculated};
  EXPECT_TRUE(cfg.is_calculation_iteration(0));
  EXPECT_FALSE(cfg.is_calculation_iteration(1));
  EXPECT_FALSE(cfg.is_calculation_iteration(2));
  EXPECT_TRUE(cfg.is_calculation_iteration(3));
  EXPECT_TRUE(cfg.is_calculation_iteration(6));
}

// A slowly drifting SPD sequence, standing in for S_n across KF iterations.
std::vector<Matrix<double>> drifting_sequence(std::size_t n, std::size_t dim,
                                              double drift) {
  Rng rng(31);
  auto s = random_spd<double>(dim, rng, 2.0);
  std::vector<Matrix<double>> seq;
  for (std::size_t k = 0; k < n; ++k) {
    seq.push_back(s);
    for (std::size_t i = 0; i < dim; ++i)
      s(i, i) += drift * (1.0 + 0.1 * double(i));
  }
  return seq;
}

TEST(InterleavedStrategyTest, EventsFollowTheSchedule) {
  InterleavedStrategy<double> strat(CalcMethod::kGauss,
                                    {2, 3, SeedPolicy::kLastCalculated});
  auto seq = drifting_sequence(6, 6, 0.001);
  for (std::size_t n = 0; n < seq.size(); ++n) {
    strat.invert(seq[n], n);
    const auto ev = strat.last_event();
    if (n % 2 == 0) {
      EXPECT_EQ(ev.path, InversePath::kCalculation) << n;
    } else {
      EXPECT_EQ(ev.path, InversePath::kApproximation) << n;
      EXPECT_EQ(ev.newton_iterations, 3u) << n;
    }
  }
}

TEST(InterleavedStrategyTest, FirstInvertCalculatesEvenIfScheduleSaysNot) {
  // calc_freq = 3 means iteration 1 is an approximation step, but if the
  // strategy starts at iteration 1 (no seed yet) it must calculate.
  InterleavedStrategy<double> strat(CalcMethod::kGauss,
                                    {3, 2, SeedPolicy::kLastCalculated});
  auto seq = drifting_sequence(2, 5, 0.001);
  strat.invert(seq[0], /*kf_iteration=*/1);
  EXPECT_EQ(strat.last_event().path, InversePath::kCalculation);
}

TEST(InterleavedStrategyTest, ApproxZeroReusesSeedUnchanged) {
  InterleavedStrategy<double> strat(CalcMethod::kGauss,
                                    {0, 0, SeedPolicy::kLastCalculated});
  auto seq = drifting_sequence(3, 5, 0.01);
  auto first = strat.invert(seq[0], 0);
  auto second = strat.invert(seq[1], 1);
  kalmmind::testing::expect_matrix_near(first, second, 0.0,
                                        "approx=0 returns the seed");
}

TEST(InterleavedStrategyTest, MoreNewtonIterationsTrackDriftBetter) {
  auto seq = drifting_sequence(10, 8, 0.05);
  double errors[2];
  std::size_t idx = 0;
  for (std::size_t approx : {1u, 4u}) {
    InterleavedStrategy<double> strat(
        CalcMethod::kGauss,
        {0, approx, SeedPolicy::kPreviousIteration});
    double err = 0.0;
    for (std::size_t n = 0; n < seq.size(); ++n)
      err = inverse_error(seq[n], strat.invert(seq[n], n));
    errors[idx++] = err;  // final-iteration error
  }
  EXPECT_LT(errors[1], errors[0]);
}

TEST(InterleavedStrategyTest, PreviousIterationPolicyBeatsStaleCalculated) {
  // With calc_freq=0 and steady drift, seeding from the previous iteration
  // (eq. 4) must outperform the last-calculated seed (eq. 5), which goes
  // stale.
  auto seq = drifting_sequence(20, 8, 0.03);
  double final_err[2];
  for (int policy = 0; policy < 2; ++policy) {
    InterleavedStrategy<double> strat(
        CalcMethod::kGauss,
        {0, 2,
         policy ? SeedPolicy::kPreviousIteration
                : SeedPolicy::kLastCalculated});
    double err = 0.0;
    for (std::size_t n = 0; n < seq.size(); ++n)
      err = inverse_error(seq[n], strat.invert(seq[n], n));
    final_err[policy] = err;
  }
  EXPECT_LT(final_err[1], final_err[0]);
}

TEST(InterleavedStrategyTest, PoliciesIdenticalWhenCalcFreqIsTwo) {
  // With calc_freq=2 every approximation step immediately follows a
  // calculation, so both policies pick the same seed.
  auto seq = drifting_sequence(8, 6, 0.02);
  InterleavedStrategy<double> p0(CalcMethod::kGauss,
                                 {2, 2, SeedPolicy::kLastCalculated});
  InterleavedStrategy<double> p1(CalcMethod::kGauss,
                                 {2, 2, SeedPolicy::kPreviousIteration});
  for (std::size_t n = 0; n < seq.size(); ++n) {
    auto a = p0.invert(seq[n], n);
    auto b = p1.invert(seq[n], n);
    kalmmind::testing::expect_matrix_near(a, b, 0.0, "policy equivalence");
  }
}

TEST(InterleavedStrategyTest, ResetForcesRecalculation) {
  auto seq = drifting_sequence(4, 5, 0.01);
  InterleavedStrategy<double> strat(CalcMethod::kGauss,
                                    {0, 1, SeedPolicy::kLastCalculated});
  strat.invert(seq[0], 0);
  strat.invert(seq[1], 1);
  EXPECT_EQ(strat.last_event().path, InversePath::kApproximation);
  strat.reset();
  strat.invert(seq[2], 2);
  EXPECT_EQ(strat.last_event().path, InversePath::kCalculation);
}

TEST(InterleavedStrategyTest, NameEncodesConfiguration) {
  InterleavedStrategy<double> strat(CalcMethod::kCholesky,
                                    {3, 4, SeedPolicy::kPreviousIteration});
  const auto name = strat.name();
  EXPECT_NE(name.find("cholesky"), std::string::npos);
  EXPECT_NE(name.find("calc_freq=3"), std::string::npos);
  EXPECT_NE(name.find("approx=4"), std::string::npos);
}

TEST(LiteStrategyTest, SingleNewtonStepFromPreloadedSeed) {
  auto seq = drifting_sequence(6, 6, 0.01);
  auto exact0 = linalg::invert_lu(seq[0]);
  LiteStrategy<double> lite(exact0);
  double err = 0.0;
  for (std::size_t n = 0; n < seq.size(); ++n) {
    auto inv = lite.invert(seq[n], n);
    err = inverse_error(seq[n], inv);
    EXPECT_EQ(lite.last_event().newton_iterations, 1u);
  }
  EXPECT_LT(err, 1e-2) << "LITE tracks slow drift with one step/iteration";
}

TEST(LiteStrategyTest, ResetRestoresPreloadedSeed) {
  auto seq = drifting_sequence(3, 5, 0.05);
  auto exact0 = linalg::invert_lu(seq[0]);
  LiteStrategy<double> lite(exact0);
  auto first = lite.invert(seq[0], 0);
  lite.invert(seq[1], 1);
  lite.reset();
  auto again = lite.invert(seq[0], 0);
  kalmmind::testing::expect_matrix_near(first, again, 0.0);
}

TEST(ConstantInverseStrategyTest, ApproxZeroServesTheConstant) {
  auto seq = drifting_sequence(3, 5, 0.1);
  auto constant = linalg::invert_lu(seq[0]);
  ConstantInverseStrategy<double> strat(constant, 0);
  auto out = strat.invert(seq[2], 2);
  kalmmind::testing::expect_matrix_near(out, constant, 0.0);
  EXPECT_EQ(strat.last_event().path, InversePath::kNone);
}

TEST(ConstantInverseStrategyTest, NewtonRefinementImprovesTheConstant) {
  auto seq = drifting_sequence(5, 6, 0.05);
  auto constant = linalg::invert_lu(seq[0]);
  ConstantInverseStrategy<double> fixed(constant, 0);
  ConstantInverseStrategy<double> refined(constant, 3);
  const auto& target = seq[4];
  EXPECT_LT(inverse_error(target, refined.invert(target, 4)),
            inverse_error(target, fixed.invert(target, 4)));
  EXPECT_EQ(refined.last_event().path, InversePath::kApproximation);
}

// End-to-end: the interleaved filter on a real (small) model must approach
// the exact-inversion filter as approx grows.
TEST(InterleavedFilterTest, AccuracyImprovesWithApprox) {
  auto m = small_model(6);
  auto zs = simulate_measurements(m, 60);
  auto ref = run_reference(m, zs);

  double prev_err = 1e9;
  for (std::size_t approx : {1u, 3u, 5u}) {
    KalmanFilter<double> filter(
        m, std::make_unique<InterleavedStrategy<double>>(
               CalcMethod::kGauss,
               InterleaveConfig{0, approx, SeedPolicy::kPreviousIteration}));
    auto out = filter.run(zs);
    double err = 0.0;
    for (std::size_t n = 0; n < zs.size(); ++n)
      for (std::size_t j = 0; j < 2; ++j)
        err += std::pow(out.states[n][j] - ref.states[n][j], 2);
    EXPECT_LE(err, prev_err * 1.001) << "approx=" << approx;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-10);
}

}  // namespace
}  // namespace kalmmind::kalman
