// Small well-posed Kalman models and measurement streams for the filter
// tests (kept tiny so the whole suite runs in milliseconds).
#pragma once

#include <random>
#include <vector>

#include "kalman/model.hpp"
#include "linalg/random.hpp"

namespace kalmmind::testing {

using kalman::KalmanModel;
using linalg::Matrix;
using linalg::Rng;
using linalg::Vector;

// A stable 2-state (position/velocity) model observed through z_dim noisy
// channels.
inline KalmanModel<double> small_model(std::size_t z_dim = 4,
                                       std::uint64_t seed = 123) {
  Rng rng(seed);
  KalmanModel<double> m;
  m.f = Matrix<double>(2, 2, {1.0, 0.1, 0.0, 0.95});
  m.q = Matrix<double>(2, 2, {1e-3, 0.0, 0.0, 1e-3});
  m.h = linalg::random_matrix<double>(z_dim, 2, rng, -1.0, 1.0);
  m.r = linalg::random_spd<double>(z_dim, rng, /*ridge=*/2.0);
  m.x0 = Vector<double>(2);
  m.p0 = Matrix<double>::identity(2) * 0.5;
  m.validate();
  return m;
}

// Simulate the model forward to produce consistent measurements.
// `process_noise` controls how strongly every state is excited — system
// identification tests need persistent excitation (use ~0.3), plain
// filtering tests work with the quiet default.
inline std::vector<Vector<double>> simulate_measurements(
    const KalmanModel<double>& m, std::size_t steps, std::uint64_t seed = 7,
    double process_noise = 0.03) {
  Rng rng(seed);
  std::normal_distribution<double> white(0.0, 1.0);
  Vector<double> x = m.x0;
  x[0] = 1.0;  // start off the origin so there is signal to track
  std::vector<Vector<double>> zs;
  zs.reserve(steps);
  for (std::size_t n = 0; n < steps; ++n) {
    Vector<double> fx;
    linalg::multiply_into(fx, m.f, x);
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = fx[i] + process_noise * white(rng);
    Vector<double> z;
    linalg::multiply_into(z, m.h, x);
    for (std::size_t i = 0; i < z.size(); ++i) z[i] += 0.5 * white(rng);
    zs.push_back(std::move(z));
  }
  return zs;
}

}  // namespace kalmmind::testing
