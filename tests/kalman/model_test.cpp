#include "kalman/model.hpp"

#include <gtest/gtest.h>

#include "kalman_test_util.hpp"

namespace kalmmind::kalman {
namespace {

using kalmmind::testing::small_model;

TEST(KalmanModelTest, ValidModelPassesValidation) {
  EXPECT_NO_THROW(small_model().validate());
}

TEST(KalmanModelTest, DimensionsAccessors) {
  auto m = small_model(5);
  EXPECT_EQ(m.x_dim(), 2u);
  EXPECT_EQ(m.z_dim(), 5u);
}

TEST(KalmanModelTest, RejectsNonSquareF) {
  auto m = small_model();
  m.f = Matrix<double>(2, 3);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(KalmanModelTest, RejectsWrongQ) {
  auto m = small_model();
  m.q = Matrix<double>(3, 3);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(KalmanModelTest, RejectsWrongHColumns) {
  auto m = small_model(4);
  m.h = Matrix<double>(4, 3);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(KalmanModelTest, RejectsWrongR) {
  auto m = small_model(4);
  m.r = Matrix<double>(3, 3);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(KalmanModelTest, RejectsWrongInitialState) {
  auto m = small_model();
  m.x0 = Vector<double>(3);
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = small_model();
  m.p0 = Matrix<double>(3, 3);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(KalmanModelTest, RejectsEmptyModel) {
  KalmanModel<double> m;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(KalmanModelTest, CastPreservesValuesWithinPrecision) {
  auto m = small_model();
  auto f = m.cast<float>();
  EXPECT_NO_THROW(f.validate());
  EXPECT_NEAR(double(f.f(0, 1)), m.f(0, 1), 1e-7);
  EXPECT_NEAR(double(f.r(1, 1)), m.r(1, 1), 1e-5 * std::fabs(m.r(1, 1)));
  EXPECT_EQ(f.x_dim(), m.x_dim());
  EXPECT_EQ(f.z_dim(), m.z_dim());
}

}  // namespace
}  // namespace kalmmind::kalman
