// Steady-state KF: Riccati fixed point, constant-gain filter behavior.
#include "kalman/sskf.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../test_util.hpp"
#include "kalman/calculation_strategies.hpp"
#include "kalman/filter.hpp"
#include "kalman_test_util.hpp"

namespace kalmmind::kalman {
namespace {

using kalmmind::testing::expect_matrix_near;
using kalmmind::testing::simulate_measurements;
using kalmmind::testing::small_model;

TEST(SteadyStateTest, GainIsAFixedPointOfTheRecursion) {
  auto m = small_model(5);
  auto ss = solve_steady_state(m);
  EXPECT_GT(ss.iterations, 1u);

  // Recompute one covariance/gain step starting from the converged P_pred:
  // the gain must not move.
  Matrix<double> hp, s;
  linalg::multiply_into(hp, m.h, ss.p_pred);
  linalg::multiply_bt_into(s, hp, m.h);
  s += m.r;
  expect_matrix_near(s, ss.s, 1e-8, "S at the fixed point");
  Matrix<double> pht;
  linalg::multiply_bt_into(pht, ss.p_pred, m.h);
  Matrix<double> k;
  linalg::multiply_into(k, pht, linalg::invert_lu(s));
  expect_matrix_near(k, ss.k, 1e-7, "K at the fixed point");
}

TEST(SteadyStateTest, SInverseIsExact) {
  auto m = small_model(4);
  auto ss = solve_steady_state(m);
  EXPECT_LT(linalg::inverse_residual(ss.s, ss.s_inv), 1e-9);
}

TEST(SteadyStateTest, MatchesLongFilterRun) {
  auto m = small_model(6);
  auto zs = simulate_measurements(m, 300);
  KalmanFilter<double> filter(
      m, std::make_unique<CalculationStrategy<double>>(CalcMethod::kLu));
  for (const auto& z : zs) filter.step(z);

  auto ss = solve_steady_state(m);
  // Converged posterior covariance equals (I - K H) P_pred.
  Matrix<double> kh;
  linalg::multiply_into(kh, ss.k, m.h);
  Matrix<double> p_post;
  linalg::multiply_into(p_post, linalg::identity_minus(kh), ss.p_pred);
  expect_matrix_near(filter.covariance(), p_post, 1e-9,
                     "filter P converges to the Riccati solution");
}

TEST(SteadyStateTest, ThrowsWithoutConvergenceBudget) {
  auto m = small_model();
  EXPECT_THROW(solve_steady_state(m, 1e-15, 2), std::runtime_error);
}

TEST(ConstantGainFilterTest, RejectsBadGainShape) {
  auto m = small_model(4);
  EXPECT_THROW(ConstantGainFilter<double>(m, Matrix<double>(3, 4)),
               std::invalid_argument);
}

TEST(ConstantGainFilterTest, RejectsWrongMeasurementSize) {
  auto m = small_model(4);
  auto ss = solve_steady_state(m);
  ConstantGainFilter<double> filter(m, ss.k);
  EXPECT_THROW(filter.step(Vector<double>(3)), std::invalid_argument);
}

TEST(ConstantGainFilterTest, AgreesWithFullFilterAfterConvergence) {
  // Once the full filter's gain has converged, both filters apply the same
  // update; starting them from the same state they stay together.
  auto m = small_model(5);
  auto zs = simulate_measurements(m, 400);
  KalmanFilter<double> full(
      m, std::make_unique<CalculationStrategy<double>>(CalcMethod::kLu));
  auto ss = solve_steady_state(m);
  ConstantGainFilter<double> sskf(m, ss.k);

  double max_gap = 0.0;
  for (std::size_t n = 0; n < zs.size(); ++n) {
    const auto& xf = full.step(zs[n]);
    const auto& xs = sskf.step(zs[n]);
    if (n > 350) {  // compare only after both reach steady state
      for (std::size_t j = 0; j < 2; ++j)
        max_gap = std::max(max_gap, std::fabs(xf[j] - xs[j]));
    }
  }
  EXPECT_LT(max_gap, 1e-3);
}

TEST(ConstantGainFilterTest, TransientDiffersFromFullFilter) {
  // ...but during the transient the SSKF is visibly worse — the accuracy
  // cost the paper's Table III shows.
  auto m = small_model(5);
  auto zs = simulate_measurements(m, 10);
  KalmanFilter<double> full(
      m, std::make_unique<CalculationStrategy<double>>(CalcMethod::kLu));
  auto ss = solve_steady_state(m);
  ConstantGainFilter<double> sskf(m, ss.k);
  double gap = 0.0;
  for (const auto& z : zs) {
    const auto& xf = full.step(z);
    const auto& xs = sskf.step(z);
    gap = std::max(gap, std::fabs(xf[0] - xs[0]));
  }
  EXPECT_GT(gap, 1e-6);
}

TEST(ConstantGainFilterTest, RunIsReproducibleAndEventsAreNone) {
  auto m = small_model(4);
  auto zs = simulate_measurements(m, 20);
  auto ss = solve_steady_state(m);
  ConstantGainFilter<double> sskf(m, ss.k);
  auto out1 = sskf.run(zs);
  auto out2 = sskf.run(zs);
  ASSERT_EQ(out1.states.size(), 20u);
  for (std::size_t n = 0; n < 20; ++n)
    EXPECT_TRUE(out1.states[n] == out2.states[n]);
  for (const auto& ev : out1.events) EXPECT_EQ(ev.path, InversePath::kNone);
}

}  // namespace
}  // namespace kalmmind::kalman
