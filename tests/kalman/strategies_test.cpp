// The calculation and literature-approximation strategies: dispatch,
// inverse quality ordering, statefulness and telemetry.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "kalman/approximation_strategies.hpp"
#include "kalman/calculation_strategies.hpp"
#include "linalg/random.hpp"

namespace kalmmind::kalman {
namespace {

using kalmmind::testing::inverse_error;
using linalg::Matrix;
using linalg::random_spd;
using linalg::Rng;

TEST(CalculationStrategyTest, AllMethodsInvertSpd) {
  Rng rng(2);
  auto s = random_spd<double>(10, rng);
  for (CalcMethod method : {CalcMethod::kGauss, CalcMethod::kLu,
                            CalcMethod::kCholesky, CalcMethod::kQr}) {
    CalculationStrategy<double> strategy(method);
    auto inv = strategy.invert(s, 0);
    EXPECT_LT(inverse_error(s, inv), 1e-7) << to_string(method);
    EXPECT_EQ(strategy.last_event().path, InversePath::kCalculation);
  }
}

TEST(CalculationStrategyTest, NamesAreStable) {
  EXPECT_EQ(CalculationStrategy<double>(CalcMethod::kGauss).name(), "gauss");
  EXPECT_EQ(CalculationStrategy<double>(CalcMethod::kCholesky).name(),
            "cholesky");
  EXPECT_EQ(CalculationStrategy<double>(CalcMethod::kQr).name(), "qr");
  EXPECT_EQ(CalculationStrategy<double>(CalcMethod::kLu).name(), "lu");
}

TEST(NewtonClassicStrategyTest, MoreIterationsImproveInverse) {
  Rng rng(3);
  auto s = random_spd<double>(12, rng, 2.0);
  NewtonClassicStrategy<double> coarse(4);
  NewtonClassicStrategy<double> fine(24);
  const double e_coarse = inverse_error(s, coarse.invert(s, 0));
  const double e_fine = inverse_error(s, fine.invert(s, 0));
  EXPECT_LT(e_fine, e_coarse);
  EXPECT_LT(e_fine, 1e-6);
  EXPECT_EQ(fine.last_event().path, InversePath::kApproximation);
  EXPECT_EQ(fine.last_event().newton_iterations, 24u);
}

TEST(TaylorStrategyTest, FirstCallAnchorsExactly) {
  Rng rng(5);
  auto s = random_spd<double>(8, rng);
  TaylorStrategy<double> taylor(2);
  auto inv = taylor.invert(s, 0);
  EXPECT_LT(inverse_error(s, inv), 1e-7);
  EXPECT_EQ(taylor.last_event().path, InversePath::kCalculation);
}

TEST(TaylorStrategyTest, TracksSlowlyDriftingMatrix) {
  Rng rng(7);
  auto s0 = random_spd<double>(8, rng, 2.0);
  TaylorStrategy<double> taylor(2);
  taylor.invert(s0, 0);
  // Drift the matrix slightly; the first-order expansion must stay close.
  auto s1 = s0;
  for (std::size_t i = 0; i < 8; ++i) s1(i, i) += 0.01;
  auto inv = taylor.invert(s1, 1);
  EXPECT_EQ(taylor.last_event().path, InversePath::kApproximation);
  EXPECT_LT(inverse_error(s1, inv), 1e-2);
}

TEST(TaylorStrategyTest, HigherOrderTracksBigDriftBetter) {
  Rng rng(9);
  auto s0 = random_spd<double>(8, rng, 2.0);
  auto s1 = s0;
  for (std::size_t i = 0; i < 8; ++i) s1(i, i) += 0.3;

  TaylorStrategy<double> low(2), high(4);
  low.invert(s0, 0);
  high.invert(s0, 0);
  EXPECT_LT(inverse_error(s1, high.invert(s1, 1)),
            inverse_error(s1, low.invert(s1, 1)));
}

TEST(TaylorStrategyTest, ErrorGrowsWithDriftFromAnchor) {
  Rng rng(11);
  auto s0 = random_spd<double>(8, rng, 2.0);
  TaylorStrategy<double> taylor(2);
  taylor.invert(s0, 0);
  auto small_drift = s0;
  auto large_drift = s0;
  for (std::size_t i = 0; i < 8; ++i) {
    small_drift(i, i) += 0.01;
    large_drift(i, i) += 0.5;
  }
  EXPECT_LT(inverse_error(small_drift, taylor.invert(small_drift, 1)),
            inverse_error(large_drift, taylor.invert(large_drift, 2)));
}

TEST(TaylorStrategyTest, ResetDropsAnchor) {
  Rng rng(13);
  auto s = random_spd<double>(6, rng);
  TaylorStrategy<double> taylor(2);
  taylor.invert(s, 0);
  taylor.reset();
  taylor.invert(s, 0);
  EXPECT_EQ(taylor.last_event().path, InversePath::kCalculation);
}

TEST(IfkfStrategyTest, ExactWhenRIsActuallyDiagonal) {
  // If the true noise is uncorrelated, diagonalizing R changes nothing and
  // the division-free iteration converges to the exact inverse.
  Rng rng(17);
  auto signal = random_spd<double>(8, rng, 0.0);
  Matrix<double> r(8, 8);
  for (std::size_t i = 0; i < 8; ++i) r(i, i) = 5.0;
  auto s = signal;
  s += r;
  IfkfStrategy<double> ifkf(r, 16);
  EXPECT_LT(inverse_error(s, ifkf.invert(s, 0)), 1e-8);
}

TEST(IfkfStrategyTest, MismatchGrowsWithCorrelation) {
  // Correlated R: the assumed inverse is systematically wrong.
  Rng rng(19);
  auto signal = random_spd<double>(8, rng, 0.0);
  Matrix<double> r(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      const double dist = double(i > j ? i - j : j - i);
      r(i, j) = 4.0 * std::exp(-dist / 4.0);
    }
  }
  auto s = signal;
  s += r;
  IfkfStrategy<double> ifkf(r, 16);
  const double err = inverse_error(s, ifkf.invert(s, 0));
  EXPECT_GT(err, 0.1) << "correlation blindness must cost accuracy";
  EXPECT_TRUE(std::isfinite(err));
}

TEST(IfkfStrategyTest, RejectsWrongRShape) {
  Rng rng(23);
  auto s = random_spd<double>(6, rng);
  IfkfStrategy<double> ifkf(Matrix<double>(4, 4, 1.0));
  EXPECT_THROW(ifkf.invert(s, 0), std::invalid_argument);
}

TEST(IfkfStrategyTest, DefaultConstructedUsesPureS) {
  Rng rng(29);
  auto s = random_spd<double>(6, rng, 4.0);
  IfkfStrategy<double> ifkf;
  auto inv = ifkf.invert(s, 0);
  EXPECT_LT(inverse_error(s, inv), 1e-6)
      << "without R the strategy just inverts S iteratively";
}

}  // namespace
}  // namespace kalmmind::kalman
