// StrategySpec: the typed identity of an inverse-strategy choice.
// Round-trip through the text form, behavioral equality, and the
// fingerprint stability/sensitivity contract the gain-schedule cache
// (kalman/gain_schedule.hpp) keys on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "kalman/filter_config.hpp"
#include "kalman/strategy_spec.hpp"
#include "kalman_test_util.hpp"

namespace kalmmind {
namespace {

using kalman::SpecPrecision;
using kalman::StrategyKind;
using kalman::StrategySpec;

// One representative spec per kind, with every kind-relevant field moved
// off its default so the round-trip actually exercises the argument list.
std::vector<StrategySpec> representative_specs() {
  std::vector<StrategySpec> specs;
  for (std::size_t k = 0; k < kalman::kStrategyKindCount; ++k) {
    StrategySpec s;
    s.kind = StrategyKind(k);
    switch (s.kind) {
      case StrategyKind::kInterleaved:
        s.calc_method = kalman::CalcMethod::kCholesky;
        s.calc_freq = 4;
        s.approx = 2;
        s.policy = kalman::SeedPolicy::kPreviousIteration;
        break;
      case StrategyKind::kNewton:
        s.newton_iterations = 7;
        break;
      case StrategyKind::kTaylor:
        s.taylor_order = 3;
        break;
      case StrategyKind::kIfkf:
        s.ifkf_iterations = 20;
        break;
      case StrategyKind::kSskf:
        s.approx = 3;
        break;
      default:
        break;
    }
    specs.push_back(s);
  }
  return specs;
}

TEST(StrategySpecTest, ParseOfFormatRoundTripsEveryKindAndPrecision) {
  const SpecPrecision precisions[] = {SpecPrecision::kF64, SpecPrecision::kF32,
                                      SpecPrecision::kFx32,
                                      SpecPrecision::kFx64};
  for (StrategySpec s : representative_specs()) {
    for (const SpecPrecision p : precisions) {
      s.precision = p;
      SCOPED_TRACE(s.format());
      const StrategySpec back = StrategySpec::parse(s.format());
      EXPECT_EQ(back, s);
      EXPECT_EQ(back.fingerprint(), s.fingerprint());
      // format() is canonical: formatting the parse reproduces the text.
      EXPECT_EQ(back.format(), s.format());
    }
  }
}

TEST(StrategySpecTest, BareNamesParseToKindDefaults) {
  for (std::size_t k = 0; k < kalman::kStrategyKindCount; ++k) {
    const StrategyKind kind = StrategyKind(k);
    SCOPED_TRACE(to_string(kind));
    const StrategySpec parsed = StrategySpec::parse(to_string(kind));
    StrategySpec expect;
    expect.kind = kind;
    EXPECT_EQ(parsed, expect);
  }
}

TEST(StrategySpecTest, EqualityIsBehavioral) {
  // Leftover fields a kind never consumes must not break equality: a cache
  // key built from a CLI spec and one built programmatically should match.
  StrategySpec a, b;
  a.kind = b.kind = StrategyKind::kGauss;
  a.taylor_order = 9;
  b.newton_iterations = 17;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.normalized().format(), b.normalized().format());

  // ...but the fields the kind does consume must participate.
  a.kind = b.kind = StrategyKind::kTaylor;
  b.taylor_order = a.taylor_order;
  EXPECT_EQ(a, b);
  b.taylor_order = a.taylor_order + 1;
  EXPECT_NE(a, b);
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  // Precision is identity metadata for every kind: an f32 deployment never
  // shares a schedule with the f64 one.
  a.kind = b.kind = StrategyKind::kLu;
  b.taylor_order = a.taylor_order;
  b.precision = SpecPrecision::kF32;
  EXPECT_NE(a, b);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(StrategySpecTest, TryParseRejectsMalformedText) {
  StrategySpec out;
  EXPECT_FALSE(StrategySpec::try_parse("definitely-not-a-strategy", &out).ok());
  EXPECT_FALSE(StrategySpec::try_parse("", &out).ok());
  EXPECT_FALSE(StrategySpec::try_parse("newton(m=7", &out).ok());
  EXPECT_FALSE(StrategySpec::try_parse("newton(m=seven)", &out).ok());
  EXPECT_FALSE(StrategySpec::try_parse("newton(m)", &out).ok());
  EXPECT_FALSE(StrategySpec::try_parse("gauss(banana=1)", &out).ok());
  EXPECT_FALSE(StrategySpec::try_parse("interleaved(policy=2)", &out).ok());
  EXPECT_FALSE(StrategySpec::try_parse("gauss@f16", &out).ok());
  // check() violations surface through parsing too.
  EXPECT_FALSE(StrategySpec::try_parse("taylor(order=0)", &out).ok());
  EXPECT_FALSE(StrategySpec::try_parse("newton(m=0)", &out).ok());
}

TEST(StrategySpecTest, ParseThrowsWithVocabularyInMessage) {
  try {
    StrategySpec::parse("definitely-not-a-strategy");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("definitely-not-a-strategy"), std::string::npos);
    EXPECT_NE(what.find("gauss"), std::string::npos);
    EXPECT_NE(what.find("interleaved"), std::string::npos);
  }
}

// --- fingerprint stability & sensitivity ----------------------------------

TEST(FingerprintTest, EqualValuesHashEqual) {
  const kalman::KalmanModel<double> m1 = testing::small_model(4, 11);
  const kalman::KalmanModel<double> m2 = testing::small_model(4, 11);
  ASSERT_EQ(m1, m2);
  EXPECT_EQ(m1.fingerprint(), m2.fingerprint());

  kalman::FilterOptions o1, o2;
  EXPECT_EQ(o1.fingerprint(), o2.fingerprint());

  kalman::FilterConfigD c1, c2;
  c1.model = m1;
  c2.model = m2;
  ASSERT_EQ(c1, c2);
  EXPECT_EQ(c1.fingerprint(), c2.fingerprint());
}

TEST(FingerprintTest, ModelFingerprintSeesEveryMatrix) {
  const kalman::KalmanModel<double> base = testing::small_model(4);
  const std::uint64_t fp = base.fingerprint();

  auto perturbed = [&](auto&& mutate) {
    kalman::KalmanModel<double> m = base;
    mutate(m);
    return m.fingerprint();
  };
  EXPECT_NE(fp, perturbed([](auto& m) { m.f(0, 0) += 1e-12; }));
  EXPECT_NE(fp, perturbed([](auto& m) { m.q(1, 1) *= 2.0; }));
  EXPECT_NE(fp, perturbed([](auto& m) { m.h(0, 1) = -m.h(0, 1); }));
  EXPECT_NE(fp, perturbed([](auto& m) { m.r(0, 0) += 0.5; }));
  EXPECT_NE(fp, perturbed([](auto& m) { m.x0[0] = 42.0; }));
  EXPECT_NE(fp, perturbed([](auto& m) { m.p0(0, 0) *= 3.0; }));
}

TEST(FingerprintTest, OptionsAndHealthFieldsAreSensitive) {
  const kalman::FilterOptions base;
  const std::uint64_t fp = base.fingerprint();

  kalman::FilterOptions joseph = base;
  joseph.joseph_update = true;
  EXPECT_NE(fp, joseph.fingerprint());

  auto health_perturbed = [&](auto&& mutate) {
    kalman::FilterOptions o = base;
    mutate(o.health);
    return o.fingerprint();
  };
  EXPECT_NE(fp, health_perturbed([](auto& h) { h.enabled = true; }));
  EXPECT_NE(fp, health_perturbed([](auto& h) { h.max_state_abs = 1e6; }));
  EXPECT_NE(fp,
            health_perturbed([](auto& h) { h.covariance_symmetry_tol = 0.1; }));
  EXPECT_NE(fp,
            health_perturbed([](auto& h) { h.newton_residual_limit = 2.0; }));
  EXPECT_NE(fp,
            health_perturbed([](auto& h) { h.innovation_gate_sigma = 4.0; }));
  EXPECT_NE(fp, health_perturbed([](auto& h) { h.deescalate_after = 3; }));
}

TEST(FingerprintTest, FilterConfigSeesEveryComponent) {
  kalman::FilterConfigD base;
  base.model = testing::small_model(4);
  base.strategy.kind = StrategyKind::kInterleaved;
  base.strategy.calc_freq = 4;
  const std::uint64_t fp = base.fingerprint();

  kalman::FilterConfigD other = base;
  other.model = testing::small_model(4, /*seed=*/999);
  EXPECT_NE(fp, other.fingerprint());

  other = base;
  other.strategy.calc_freq = 8;
  EXPECT_NE(fp, other.fingerprint());

  other = base;
  other.options.joseph_update = true;
  EXPECT_NE(fp, other.fingerprint());

  other = base;
  other.strategy_data.preloaded_inverse =
      linalg::Matrix<double>::identity(base.model.z_dim());
  EXPECT_NE(fp, other.fingerprint());
}

}  // namespace
}  // namespace kalmmind
