// Locks in the allocation-free hot path: after the first step, a
// KalmanFilter (any approximation-path strategy) and a ConstantGainFilter
// perform ZERO heap allocations per step.  Ground truth is a global
// operator new/delete replacement counting every allocation in the binary
// — not the linalg::thread_buffer_allocations debug hook, which only sees
// the explicit Matrix/Vector sizing paths.
//
// Also checks that the reworked step stays within the documented tolerance
// of a naive replica of the pre-workspace algorithm (docs/performance.md:
// the symmetric sandwich mirrors the upper triangle, which perturbs the
// result at rounding level relative to computing both triangles).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "../test_util.hpp"
#include "kalman/factory.hpp"
#include "kalman/filter.hpp"
#include "kalman/sskf.hpp"
#include "kalman_test_util.hpp"
#include "linalg/gauss.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

// Replace the global allocation functions for this whole test binary.  The
// counter is the only addition; storage still comes from malloc/free.
void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, std::max(static_cast<std::size_t>(align),
                                  sizeof(void*)),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// GCC pairs these deletes against the usual (non-malloc) operator new and
// warns; every new above IS malloc/posix_memalign-based, so free matches.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace kalmmind::kalman {
namespace {

using kalmmind::testing::expect_matrix_near;
using kalmmind::testing::expect_vector_near;
using kalmmind::testing::simulate_measurements;
using kalmmind::testing::small_model;
using linalg::Matrix;
using linalg::Vector;

std::uint64_t heap_allocations() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

// Strategies whose steady-state iterations must be allocation-free: every
// approximation-path configuration plus the preloaded constant inverse.
std::vector<std::pair<std::string, StrategyParams<double>>>
steady_state_strategies(const KalmanModel<double>& model) {
  std::vector<std::pair<std::string, StrategyParams<double>>> out;

  StrategyParams<double> newton;
  newton.newton_iterations = 3;
  out.emplace_back("newton", newton);

  StrategyParams<double> taylor;
  taylor.taylor_order = 3;
  out.emplace_back("taylor", taylor);

  StrategyParams<double> ifkf;
  ifkf.r = model.r;
  ifkf.ifkf_iterations = 6;
  out.emplace_back("ifkf", ifkf);

  StrategyParams<double> interleaved;
  interleaved.interleave.calc_freq = 0;  // calculate only at iteration 0
  interleaved.interleave.approx = 2;
  out.emplace_back("interleaved", interleaved);

  SteadyState<double> ss = solve_steady_state(model);
  StrategyParams<double> lite;
  lite.preloaded_inverse = ss.s_inv;
  out.emplace_back("lite", lite);

  StrategyParams<double> sskf;
  sskf.preloaded_inverse = ss.s_inv;
  sskf.interleave.approx = 1;
  out.emplace_back("sskf", sskf);

  return out;
}

TEST(WorkspaceTest, StepIsAllocationFreeAfterWarmup) {
  const auto model = small_model(/*z_dim=*/6);
  const auto zs = simulate_measurements(model, 8);
  for (const auto& [name, params] : steady_state_strategies(model)) {
    KalmanFilter<double> filter(model,
                                make_inverse_strategy<double>(name, params));
    // Warm up: first steps size the workspace and strategy scratch (and
    // run any calculation-path iteration the schedule front-loads).
    filter.step(zs[0]);
    filter.step(zs[1]);
    const std::uint64_t before = heap_allocations();
    for (std::size_t n = 2; n < zs.size(); ++n) filter.step(zs[n]);
    EXPECT_EQ(heap_allocations() - before, 0u)
        << "strategy '" << name << "' allocated in steady state";
  }
}

TEST(WorkspaceTest, JosephUpdateStepIsAllocationFreeAfterWarmup) {
  const auto model = small_model(/*z_dim=*/5);
  const auto zs = simulate_measurements(model, 6);
  FilterOptions options;
  options.joseph_update = true;
  StrategyParams<double> params;
  params.newton_iterations = 2;
  KalmanFilter<double> filter(
      model, make_inverse_strategy<double>("newton", params), options);
  filter.step(zs[0]);
  filter.step(zs[1]);
  const std::uint64_t before = heap_allocations();
  for (std::size_t n = 2; n < zs.size(); ++n) filter.step(zs[n]);
  EXPECT_EQ(heap_allocations() - before, 0u);
}

TEST(WorkspaceTest, ConstantGainStepIsAllocationFreeAfterWarmup) {
  const auto model = small_model(/*z_dim=*/4);
  const auto zs = simulate_measurements(model, 6);
  SteadyState<double> ss = solve_steady_state(model);
  ConstantGainFilter<double> filter(model, ss.k);
  filter.step(zs[0]);
  const std::uint64_t before = heap_allocations();
  for (std::size_t n = 1; n < zs.size(); ++n) filter.step(zs[n]);
  EXPECT_EQ(heap_allocations() - before, 0u);
}

TEST(WorkspaceTest, DebugHookSeesNoBufferGrowthInSteadyState) {
  const auto model = small_model(/*z_dim=*/6);
  const auto zs = simulate_measurements(model, 6);
  StrategyParams<double> params;
  params.interleave.calc_freq = 0;
  params.interleave.approx = 2;
  KalmanFilter<double> filter(
      model, make_inverse_strategy<double>("interleaved", params));
  filter.step(zs[0]);
  filter.step(zs[1]);
  const std::uint64_t before = linalg::thread_buffer_allocations();
  for (std::size_t n = 2; n < zs.size(); ++n) filter.step(zs[n]);
  EXPECT_EQ(linalg::thread_buffer_allocations(), before);
}

TEST(WorkspaceTest, WorkspaceBytesPositiveAndStableAcrossSteps) {
  const auto model = small_model(/*z_dim=*/6);
  const auto zs = simulate_measurements(model, 4);
  KalmanFilter<double> filter(model, make_inverse_strategy<double>("gauss"));
  const std::size_t at_construction = filter.workspace_bytes();
  EXPECT_GT(at_construction, 0u);
  for (const auto& z : zs) filter.step(z);
  EXPECT_EQ(filter.workspace_bytes(), at_construction)
      << "workspace grew after construction-time reserve";
}

// The reworked step (symmetric sandwich + pht-from-hp transpose) must stay
// within the tolerance documented in docs/performance.md of the
// pre-workspace algorithm, replicated here with the naive kernels and
// per-call temporaries.
TEST(WorkspaceTest, StepMatchesNaiveReplicaWithinDocumentedTolerance) {
  const auto model = small_model(/*z_dim=*/6);
  const auto zs = simulate_measurements(model, 50);

  KalmanFilter<double> filter(model, make_inverse_strategy<double>("gauss"));

  Vector<double> x = model.x0;
  Matrix<double> p = model.p0;
  for (const auto& z : zs) {
    // Old-style step: both covariance triangles computed densely.
    Matrix<double> fp, p_pred;
    linalg::naive::multiply_into(fp, model.f, p);
    linalg::naive::multiply_bt_into(p_pred, fp, model.f);
    p_pred += model.q;
    Matrix<double> hp, s;
    linalg::naive::multiply_into(hp, model.h, p_pred);
    linalg::naive::multiply_bt_into(s, hp, model.h);
    s += model.r;
    Matrix<double> s_inv = linalg::invert_gauss(s);
    Matrix<double> pht, k;
    linalg::naive::multiply_bt_into(pht, p_pred, model.h);
    linalg::naive::multiply_into(k, pht, s_inv);
    Vector<double> hx, x_pred;
    linalg::multiply_into(x_pred, model.f, x);
    linalg::multiply_into(hx, model.h, x_pred);
    Vector<double> innovation = z;
    innovation -= hx;
    Vector<double> correction;
    linalg::multiply_into(correction, k, innovation);
    x = x_pred;
    x += correction;
    Matrix<double> kh;
    linalg::naive::multiply_into(kh, k, model.h);
    Matrix<double> i_minus_kh = linalg::identity_minus(kh);
    Matrix<double> p_new;
    linalg::naive::multiply_into(p_new, i_minus_kh, p_pred);
    p = p_new;

    const Vector<double>& got = filter.step(z);
    expect_vector_near(got, x, 1e-10, "state vs pre-change reference");
  }
  expect_matrix_near(filter.covariance(), p, 1e-10,
                     "covariance vs pre-change reference");
}

TEST(WorkspaceTest, StepAllocationsCounterStaysFlatInSteadyState) {
  if constexpr (!telemetry::kCompiledIn) GTEST_SKIP();
  const auto model = small_model(/*z_dim=*/6);
  const auto zs = simulate_measurements(model, 6);
  StrategyParams<double> params;
  params.newton_iterations = 2;
  KalmanFilter<double> filter(model,
                              make_inverse_strategy<double>("newton", params));
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(true);
  auto& counter = telemetry::MetricsRegistry::global().counter(
      "kalmmind.kf.step_allocations_total");
  filter.step(zs[0]);
  filter.step(zs[1]);
  const std::uint64_t before = counter.value();
  for (std::size_t n = 2; n < zs.size(); ++n) filter.step(zs[n]);
  EXPECT_EQ(counter.value(), before);

  auto& gauge = telemetry::MetricsRegistry::global().gauge(
      "kalmmind.kf.workspace_bytes");
  EXPECT_GE(gauge.value(), double(filter.workspace_bytes()));
  telemetry::set_enabled(was_enabled);
}

}  // namespace
}  // namespace kalmmind::kalman
