// Conditioning sweep: how every inversion method degrades as the matrix
// gets harder, and how the Newton iteration count tracks the eq. (3) seed
// residual — the quantitative backbone of the accelerator's accuracy
// tiers.
#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/gauss.hpp"
#include "linalg/lu.hpp"
#include "linalg/newton.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random.hpp"

namespace kalmmind::linalg {
namespace {

using kalmmind::testing::inverse_error;

// SPD test matrix with (approximately) the requested condition number:
// random orthogonal-ish basis with prescribed eigenvalue spread.
Matrix<double> spd_with_condition(std::size_t n, double condition, Rng& rng) {
  auto q = qr_decompose(random_matrix<double>(n, n, rng)).q;
  Matrix<double> d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = n > 1 ? double(i) / double(n - 1) : 0.0;
    d(i, i) = std::pow(condition, t);  // eigenvalues 1 .. condition
  }
  Matrix<double> qd = multiply(q, d);
  return multiply_bt(qd, q);
}

class ConditioningSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConditioningSweep, DirectMethodsStayProportionalToCondition) {
  const double cond = GetParam();
  Rng rng{std::uint64_t(cond)};
  auto a = spd_with_condition(16, cond, rng);

  // Double-precision direct inverses: residual ~ eps * cond.
  const double budget = 1e-13 * cond * 16;
  EXPECT_LT(inverse_error(a, invert_gauss(a)), budget) << "gauss";
  EXPECT_LT(inverse_error(a, invert_lu(a)), budget) << "lu";
  EXPECT_LT(inverse_error(a, invert_cholesky(a)), budget) << "cholesky";
  EXPECT_LT(inverse_error(a, invert_qr(a)), budget) << "qr";
}

TEST_P(ConditioningSweep, ClassicNewtonSeedStaysAdmissible) {
  const double cond = GetParam();
  Rng rng{std::uint64_t(cond) + 1};
  auto a = spd_with_condition(12, cond, rng);
  EXPECT_TRUE(newton_seed_admissible(a, newton_classic_seed(a)));
}

TEST_P(ConditioningSweep, NewtonIterationCountGrowsWithCondition) {
  // From the classic seed the residual is ~ 1 - 1/cond, so iterations to
  // convergence grow ~ log2(log(tol)/log(residual)) — monotone in cond.
  const double cond = GetParam();
  Rng rng(7);
  auto easy = spd_with_condition(12, 2.0, rng);
  auto hard = spd_with_condition(12, cond, rng);
  const auto easy_iters =
      newton_iterations_to_converge(easy, newton_classic_seed(easy), 1e-9);
  const auto hard_iters =
      newton_iterations_to_converge(hard, newton_classic_seed(hard), 1e-9);
  if (cond > 2.0) EXPECT_GE(hard_iters, easy_iters);
  EXPECT_LT(hard_iters, 64u) << "must converge within the cap";
}

TEST_P(ConditioningSweep, WarmSeedBeatsClassicSeedEverywhere) {
  // The KalmMind premise across the conditioning range: a nearby inverse
  // needs no more iterations than the norm-scaled classic seed.
  const double cond = GetParam();
  Rng rng{std::uint64_t(cond) + 13};
  auto a = spd_with_condition(12, cond, rng);
  auto nearby = a;
  for (std::size_t i = 0; i < 12; ++i) nearby(i, i) *= 1.02;
  auto warm = invert_lu(nearby);
  EXPECT_LE(newton_iterations_to_converge(a, warm, 1e-9),
            newton_iterations_to_converge(a, newton_classic_seed(a), 1e-9));
}

TEST_P(ConditioningSweep, Float32ErrorTracksCondition) {
  // The float32 Gauss error grows with conditioning — the reason Table II
  // accuracy differs across datasets with different S conditioning.
  const double cond = GetParam();
  if (cond > 1e6) return;  // float32 runs out of mantissa entirely
  Rng rng{std::uint64_t(cond) + 29};
  auto a = spd_with_condition(16, cond, rng).cast<float>();
  const double err = inverse_error(a, invert_gauss(a));
  EXPECT_LT(err, 1e-5 * cond * 16);
  EXPECT_TRUE(std::isfinite(err));
}

INSTANTIATE_TEST_SUITE_P(Conditions, ConditioningSweep,
                         ::testing::Values(2.0, 10.0, 100.0, 1e3, 1e4, 1e6),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "cond" +
                                  std::to_string(int(std::log10(info.param) * 10));
                         });

}  // namespace
}  // namespace kalmmind::linalg
