// The four calculation methods (Gauss, LU, Cholesky, QR) against each
// other and against ground truth, across sizes and scalar types.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/gauss.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/random.hpp"

namespace kalmmind::linalg {
namespace {

using kalmmind::testing::expect_matrix_near;
using kalmmind::testing::expect_vector_near;
using kalmmind::testing::inverse_error;

TEST(GaussTest, InvertsHandMatrix) {
  Matrix<double> a(2, 2, {4, 7, 2, 6});
  auto inv = invert_gauss(a);
  Matrix<double> want(2, 2, {0.6, -0.7, -0.2, 0.4});
  expect_matrix_near(inv, want, 1e-12);
}

TEST(GaussTest, IdentityIsFixedPoint) {
  auto inv = invert_gauss(Matrix<double>::identity(5));
  expect_matrix_near(inv, Matrix<double>::identity(5), 0.0);
}

TEST(GaussTest, SingularThrows) {
  Matrix<double> a(2, 2, {1, 2, 2, 4});
  EXPECT_THROW(invert_gauss(a), SingularMatrixError);
}

TEST(GaussTest, NonSquareThrows) {
  EXPECT_THROW(invert_gauss(Matrix<double>(2, 3)), std::invalid_argument);
}

TEST(GaussTest, PivotingHandlesZeroLeadingEntry) {
  Matrix<double> a(2, 2, {0, 1, 1, 0});  // needs a row swap
  auto inv = invert_gauss(a);
  expect_matrix_near(inv, a, 1e-15);  // its own inverse
}

TEST(GaussTest, SolveMatchesInverseApplication) {
  Rng rng(3);
  auto a = random_spd<double>(9, rng);
  auto b = random_vector<double>(9, rng);
  auto x = solve_gauss(a, b);
  auto want = multiply(invert_gauss(a), b);
  expect_vector_near(x, want, 1e-9);
}

TEST(LuTest, ReconstructsViaSolve) {
  Rng rng(11);
  auto a = random_matrix<double>(12, 12, rng);
  auto lu = lu_decompose(a);
  auto b = random_vector<double>(12, rng);
  auto x = lu.solve(b);
  expect_vector_near(multiply(a, x), b, 1e-9, "A*x == b");
}

TEST(LuTest, DeterminantOfKnownMatrix) {
  Matrix<double> a(2, 2, {3, 1, 4, 2});  // det = 2
  EXPECT_NEAR(lu_decompose(a).determinant(), 2.0, 1e-12);
}

TEST(LuTest, DeterminantTracksPermutationSign) {
  Matrix<double> a(2, 2, {0, 1, 1, 0});  // det = -1, forces a swap
  EXPECT_NEAR(lu_decompose(a).determinant(), -1.0, 1e-12);
}

TEST(LuTest, SingularThrows) {
  Matrix<double> a(3, 3, {1, 2, 3, 2, 4, 6, 1, 1, 1});
  EXPECT_THROW(lu_decompose(a), SingularMatrixError);
}

TEST(CholeskyTest, FactorReconstructsMatrix) {
  Rng rng(17);
  auto a = random_spd<double>(10, rng);
  auto l = cholesky_factor(a);
  expect_matrix_near(multiply_bt(l, l), a, 1e-9, "L*L^t == A");
  // L is lower triangular.
  for (std::size_t i = 0; i < l.rows(); ++i)
    for (std::size_t j = i + 1; j < l.cols(); ++j) EXPECT_EQ(l(i, j), 0.0);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix<double> a(2, 2, {1, 2, 2, 1});  // eigenvalues 3, -1
  EXPECT_THROW(cholesky_factor(a), NotPositiveDefiniteError);
}

TEST(CholeskyTest, SolveMatchesLu) {
  Rng rng(23);
  auto a = random_spd<double>(8, rng);
  auto b = random_vector<double>(8, rng);
  auto l = cholesky_factor(a);
  expect_vector_near(cholesky_solve(l, b), lu_decompose(a).solve(b), 1e-9);
}

TEST(CholeskyTest, InverseIsSymmetric) {
  Rng rng(29);
  auto a = random_spd<double>(12, rng);
  auto inv = invert_cholesky(a);
  for (std::size_t i = 0; i < inv.rows(); ++i)
    for (std::size_t j = 0; j < i; ++j)
      EXPECT_DOUBLE_EQ(inv(i, j), inv(j, i));
}

TEST(QrTest, QIsOrthogonal) {
  Rng rng(31);
  auto a = random_matrix<double>(9, 9, rng);
  auto qr = qr_decompose(a);
  expect_matrix_near(multiply_bt(qr.q, qr.q), Matrix<double>::identity(9),
                     1e-9, "Q*Q^t == I");
}

TEST(QrTest, RIsUpperTriangular) {
  Rng rng(37);
  auto a = random_matrix<double>(7, 7, rng);
  auto qr = qr_decompose(a);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < i; ++j)
      EXPECT_NEAR(qr.r(i, j), 0.0, 1e-10);
}

TEST(QrTest, ReconstructsMatrix) {
  Rng rng(41);
  auto a = random_matrix<double>(8, 8, rng);
  auto qr = qr_decompose(a);
  expect_matrix_near(multiply(qr.q, qr.r), a, 1e-9, "Q*R == A");
}

TEST(QrTest, LeastSquaresSolveOnTallMatrix) {
  // Overdetermined consistent system: exact solution must be recovered.
  Rng rng(43);
  auto a = random_matrix<double>(10, 4, rng);
  auto x_true = random_vector<double>(4, rng);
  auto b = multiply(a, x_true);
  auto qr = qr_decompose(a);
  expect_vector_near(qr.solve(b), x_true, 1e-9);
}

TEST(QrTest, RankDeficientSolveThrows) {
  Matrix<double> a(3, 3, {1, 2, 3, 2, 4, 6, 3, 6, 9});
  auto qr = qr_decompose(a);
  Vector<double> b{1, 2, 3};
  EXPECT_THROW(qr.solve(b), SingularMatrixError);
}

// All four methods agree on SPD matrices across sizes and both float
// precisions (the innovation covariance S is always SPD).
class InversionSweep : public ::testing::TestWithParam<int> {};

TEST_P(InversionSweep, AllMethodsAgreeOnSpdDouble) {
  const int n = GetParam();
  Rng rng(std::uint64_t(n) * 7919);
  auto a = random_spd<double>(std::size_t(n), rng);
  auto gauss = invert_gauss(a);
  EXPECT_LT(inverse_error(a, gauss), 1e-7 * n);
  expect_matrix_near(invert_lu(a), gauss, 1e-7, "LU vs Gauss");
  expect_matrix_near(invert_cholesky(a), gauss, 1e-7, "Cholesky vs Gauss");
  expect_matrix_near(invert_qr(a), gauss, 1e-6, "QR vs Gauss");
}

TEST_P(InversionSweep, Float32ResidualsStayNearMachinePrecision) {
  const int n = GetParam();
  Rng rng(std::uint64_t(n) * 104729);
  auto a = random_spd<float>(std::size_t(n), rng, /*ridge=*/double(n));
  EXPECT_LT(inverse_error(a, invert_gauss(a)), 2e-3);
  EXPECT_LT(inverse_error(a, invert_cholesky(a)), 2e-3);
  EXPECT_LT(inverse_error(a, invert_qr(a)), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, InversionSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 46, 64));

}  // namespace
}  // namespace kalmmind::linalg
