#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace kalmmind::linalg {
namespace {

TEST(MatrixTest, DefaultConstructedIsEmpty) {
  Matrix<double> m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, SizedConstructionZeroInitializes) {
  Matrix<double> m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
}

TEST(MatrixTest, FillConstruction) {
  Matrix<float> m(2, 2, 7.0f);
  EXPECT_EQ(m(0, 0), 7.0f);
  EXPECT_EQ(m(1, 1), 7.0f);
}

TEST(MatrixTest, InitializerListRowMajor) {
  Matrix<int> m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 2), 3);
  EXPECT_EQ(m(1, 0), 4);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(MatrixTest, InitializerListSizeMismatchThrows) {
  EXPECT_THROW((Matrix<int>(2, 2, {1, 2, 3})), std::invalid_argument);
}

TEST(MatrixTest, IdentityHasOnesOnDiagonal) {
  auto i3 = Matrix<double>::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(i3(i, j), i == j ? 1.0 : 0.0);
}

TEST(MatrixTest, AtThrowsOutOfRange) {
  Matrix<double> m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(MatrixTest, RowPointerIsContiguous) {
  Matrix<int> m(2, 3, {1, 2, 3, 4, 5, 6});
  const int* r1 = m.row(1);
  EXPECT_EQ(r1[0], 4);
  EXPECT_EQ(r1[2], 6);
}

TEST(MatrixTest, TransposedSwapsIndices) {
  Matrix<int> m(2, 3, {1, 2, 3, 4, 5, 6});
  auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(0, 1), 4);
  EXPECT_EQ(t(2, 0), 3);
}

TEST(MatrixTest, AdditionAndSubtraction) {
  Matrix<double> a(2, 2, {1, 2, 3, 4});
  Matrix<double> b(2, 2, {4, 3, 2, 1});
  auto sum = a + b;
  auto diff = a - b;
  EXPECT_EQ(sum(0, 0), 5.0);
  EXPECT_EQ(sum(1, 1), 5.0);
  EXPECT_EQ(diff(0, 0), -3.0);
  EXPECT_EQ(diff(1, 1), 3.0);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  Matrix<double> a(2, 2);
  Matrix<double> b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(MatrixTest, ScalarMultiplyBothSides) {
  Matrix<double> a(1, 2, {1, -2});
  auto l = 2.0 * a;
  auto r = a * 3.0;
  EXPECT_EQ(l(0, 0), 2.0);
  EXPECT_EQ(l(0, 1), -4.0);
  EXPECT_EQ(r(0, 1), -6.0);
}

TEST(MatrixTest, EqualityIsElementwise) {
  Matrix<int> a(2, 2, {1, 2, 3, 4});
  Matrix<int> b = a;
  EXPECT_TRUE(a == b);
  b(1, 1) = 5;
  EXPECT_FALSE(a == b);
}

TEST(MatrixTest, ResizeZeroesContent) {
  Matrix<double> m(2, 2, 3.0);
  m.resize(3, 3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, ResizeSameShapeStillZeroes) {
  // The shape-preserving fast path must keep the zero-fill contract.
  Matrix<double> m(2, 3, 7.0);
  const double* before = m.data();
  m.resize(2, 3);
  EXPECT_EQ(m.data(), before);  // no reallocation
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
}

TEST(MatrixTest, ResizeForOverwriteKeepsBufferOnSameTotalSize) {
  Matrix<double> m(2, 3, 5.0);
  const double* before = m.data();
  m.resize_for_overwrite(3, 2);  // same element count, new shape
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.data(), before);   // no reallocation, no writes
  EXPECT_EQ(m(0, 0), 5.0);       // stale contents allowed to remain
}

TEST(MatrixTest, ResizeForOverwriteReusesCapacityWhenShrinking) {
  Matrix<double> m(4, 4, 1.0);
  const double* before = m.data();
  const std::uint64_t allocs_before = thread_buffer_allocations();
  m.resize_for_overwrite(2, 3);
  EXPECT_EQ(m.data(), before);
  m.resize_for_overwrite(4, 4);  // grows back within capacity
  EXPECT_EQ(m.data(), before);
  EXPECT_EQ(thread_buffer_allocations(), allocs_before);
}

TEST(MatrixTest, ThreadBufferAllocationsCountsSizingPaths) {
  const std::uint64_t start = thread_buffer_allocations();
  Matrix<double> m(2, 2);  // sized construction: +1
  EXPECT_EQ(thread_buffer_allocations(), start + 1);
  m.resize(2, 2);  // fast path: no allocation
  EXPECT_EQ(thread_buffer_allocations(), start + 1);
  m.resize(8, 8);  // growth beyond capacity: +1
  EXPECT_EQ(thread_buffer_allocations(), start + 2);
  m.resize_for_overwrite(8, 8);  // same size: no-op
  EXPECT_EQ(thread_buffer_allocations(), start + 2);
  Vector<double> v(3);  // sized vector construction: +1
  EXPECT_EQ(thread_buffer_allocations(), start + 3);
  v.resize_for_overwrite(3);
  EXPECT_EQ(thread_buffer_allocations(), start + 3);
}

TEST(MatrixTest, CastConvertsElementwise) {
  Matrix<double> d(2, 2, {1.5, -2.25, 3.0, 0.0});
  Matrix<float> f = d.cast<float>();
  EXPECT_FLOAT_EQ(f(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(f(0, 1), -2.25f);
}

TEST(MatrixTest, IsSquare) {
  EXPECT_TRUE((Matrix<int>(3, 3).is_square()));
  EXPECT_FALSE((Matrix<int>(3, 4).is_square()));
}

TEST(VectorTest, ConstructionAndAccess) {
  Vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_THROW(v.at(3), std::out_of_range);
}

TEST(VectorTest, Arithmetic) {
  Vector<double> a{1, 2};
  Vector<double> b{3, 4};
  auto s = a + b;
  auto d = b - a;
  auto m = a * 2.0;
  EXPECT_EQ(s[0], 4.0);
  EXPECT_EQ(d[1], 2.0);
  EXPECT_EQ(m[1], 4.0);
}

TEST(VectorTest, SizeMismatchThrows) {
  Vector<double> a{1, 2};
  Vector<double> b{1, 2, 3};
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(VectorTest, FillAndResize) {
  Vector<double> v(3, 1.0);
  v.fill(2.0);
  EXPECT_EQ(v[2], 2.0);
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 0.0);
}

TEST(VectorTest, CastConvertsElementwise) {
  Vector<double> d{1.5, -2.5};
  auto f = d.cast<float>();
  EXPECT_FLOAT_EQ(f[0], 1.5f);
  EXPECT_FLOAT_EQ(f[1], -2.5f);
}

}  // namespace
}  // namespace kalmmind::linalg
