// Newton-Raphson iterative inverse: convergence guarantees, quadratic
// rate, and the eq. (3) seed admissibility predicate.
#include "linalg/newton.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "linalg/gauss.hpp"
#include "linalg/random.hpp"

namespace kalmmind::linalg {
namespace {

using kalmmind::testing::expect_matrix_near;
using kalmmind::testing::inverse_error;

TEST(NewtonTest, ExactInverseIsFixedPoint) {
  Rng rng(1);
  auto a = random_spd<double>(8, rng);
  auto exact = invert_gauss(a);
  auto after = newton_invert(a, exact, 3);
  expect_matrix_near(after, exact, 1e-9, "Newton preserves the exact inverse");
}

TEST(NewtonTest, ClassicSeedSatisfiesConvergenceCondition) {
  // Eq. (3): ||I - A V0||_2 < 1 must hold for the Ben-Israel seed on any
  // nonsingular matrix.
  for (std::uint64_t seed : {2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    auto a = random_spd<double>(12, rng);
    EXPECT_TRUE(newton_seed_admissible(a, newton_classic_seed(a)))
        << "seed " << seed;
  }
}

TEST(NewtonTest, ConvergesFromClassicSeed) {
  Rng rng(7);
  auto a = random_spd<double>(10, rng, /*ridge=*/2.0);
  auto v = newton_invert_classic(a, 40);
  EXPECT_LT(inverse_error(a, v), 1e-8);
}

TEST(NewtonTest, ResidualShrinksMonotonically) {
  Rng rng(11);
  auto a = random_spd<double>(10, rng, 2.0);
  auto v = newton_classic_seed(a);
  double prev = inverse_error(a, v);
  for (int i = 0; i < 20; ++i) {
    v = newton_step(v, a);
    const double cur = inverse_error(a, v);
    EXPECT_LE(cur, prev * 1.0000001) << "iteration " << i;
    prev = cur;
    if (cur < 1e-13) break;
  }
  EXPECT_LT(prev, 1e-8);
}

TEST(NewtonTest, QuadraticConvergenceNearSolution) {
  // Once the residual r is small, one step takes it to ~r^2.
  Rng rng(13);
  auto a = random_spd<double>(8, rng, 1.0);
  auto exact = invert_gauss(a);
  // Perturb the exact inverse slightly.
  auto v = exact;
  for (std::size_t i = 0; i < v.rows(); ++i) v(i, i) += 1e-3;
  const double r0 = inverse_error(a, v);
  const double r1 = inverse_error(a, newton_step(v, a));
  EXPECT_LT(r1, 10.0 * r0 * r0);
}

TEST(NewtonTest, DivergesFromInadmissibleSeed) {
  Rng rng(17);
  auto a = random_spd<double>(6, rng);
  auto bad_seed = Matrix<double>::identity(6) * 100.0;  // way too large
  ASSERT_FALSE(newton_seed_admissible(a, bad_seed));
  auto v = newton_invert(a, bad_seed, 8);
  const double err = inverse_error(a, v);
  // Divergence shows as a huge residual or as float overflow to NaN.
  EXPECT_FALSE(err < 1.0) << err;
}

TEST(NewtonTest, ZeroIterationsReturnsSeed) {
  Rng rng(19);
  auto a = random_spd<double>(5, rng);
  auto seed = newton_classic_seed(a);
  auto v = newton_invert(a, seed, 0);
  expect_matrix_near(v, seed, 0.0);
}

TEST(NewtonTest, DimensionMismatchThrows) {
  Matrix<double> a(4, 4);
  Matrix<double> v(3, 3);
  EXPECT_THROW(newton_invert(a, v, 1), std::invalid_argument);
}

TEST(NewtonTest, ClassicSeedRejectsZeroMatrix) {
  Matrix<double> zero(4, 4);
  EXPECT_THROW(newton_classic_seed(zero), std::invalid_argument);
}

TEST(NewtonTest, IterationsToConvergeIsMonotonicInTolerance) {
  Rng rng(23);
  auto a = random_spd<double>(10, rng, 2.0);
  auto seed = newton_classic_seed(a);
  const auto loose = newton_iterations_to_converge(a, seed, 1e-2);
  const auto tight = newton_iterations_to_converge(a, seed, 1e-8);
  EXPECT_LE(loose, tight);
  EXPECT_LT(tight, 64u);
}

TEST(NewtonTest, GoodSeedNeedsFewerIterationsThanClassic) {
  // The KalmMind premise: seeding from a nearby inverse (here the exact
  // inverse of a perturbed matrix) converges much faster than the classic
  // data-independent seed.
  Rng rng(29);
  auto a = random_spd<double>(12, rng, 1.0);
  auto near = a;
  for (std::size_t i = 0; i < near.rows(); ++i)
    for (std::size_t j = 0; j < near.cols(); ++j)
      near(i, j) += 0.01 * to_double(a(i, j) != 0.0 ? a(i, j) : 0.0);
  auto warm_seed = invert_gauss(near);
  const auto warm = newton_iterations_to_converge(a, warm_seed, 1e-10);
  const auto cold =
      newton_iterations_to_converge(a, newton_classic_seed(a), 1e-10);
  EXPECT_LT(warm, cold);
  EXPECT_LE(warm, 6u);
}

TEST(NewtonTest, StepIntoMatchesStep) {
  Rng rng(31);
  auto a = random_spd<double>(7, rng);
  auto v = newton_classic_seed(a);
  Matrix<double> out(7, 7), scratch;
  newton_step_into(out, v, a, scratch);
  expect_matrix_near(out, newton_step(v, a), 0.0);
}

}  // namespace
}  // namespace kalmmind::linalg
