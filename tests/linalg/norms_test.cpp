#include "linalg/norms.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "linalg/gauss.hpp"
#include "linalg/random.hpp"

namespace kalmmind::linalg {
namespace {

TEST(NormsTest, OneNormIsMaxColumnSum) {
  Matrix<double> m(2, 2, {1, -2, 3, 4});
  EXPECT_DOUBLE_EQ(one_norm(m), 6.0);  // |{-2,4}| column = 6
}

TEST(NormsTest, InfNormIsMaxRowSum) {
  Matrix<double> m(2, 2, {1, -2, 3, 4});
  EXPECT_DOUBLE_EQ(inf_norm(m), 7.0);
}

TEST(NormsTest, FrobeniusOfKnownMatrix) {
  Matrix<double> m(2, 2, {3, 0, 0, 4});
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
}

TEST(NormsTest, MaxAbs) {
  Matrix<double> m(2, 2, {1, -9, 3, 4});
  EXPECT_DOUBLE_EQ(max_abs(m), 9.0);
}

TEST(NormsTest, VectorTwoNorm) {
  Vector<double> v{3, 4};
  EXPECT_DOUBLE_EQ(two_norm(v), 5.0);
}

TEST(NormsTest, TwoNormEstimateExactForDiagonal) {
  Matrix<double> m(3, 3);
  m(0, 0) = 2.0;
  m(1, 1) = -7.0;
  m(2, 2) = 0.5;
  EXPECT_NEAR(two_norm_estimate(m), 7.0, 1e-6);
}

TEST(NormsTest, TwoNormEstimateBetweenLowerAndUpperBounds) {
  Rng rng(3);
  auto m = random_matrix<double>(20, 20, rng);
  const double est = two_norm_estimate(m);
  // ||M||_2 <= sqrt(||M||_1 * ||M||_inf) and >= max_abs entry.
  EXPECT_LE(est, std::sqrt(one_norm(m) * inf_norm(m)) * (1 + 1e-9));
  EXPECT_GE(est, max_abs(m) * (1 - 1e-9));
}

TEST(NormsTest, InverseResidualZeroForExactInverse) {
  Rng rng(5);
  auto a = random_spd<double>(9, rng);
  EXPECT_LT(inverse_residual(a, invert_gauss(a)), 1e-9);
}

TEST(NormsTest, InverseResidualOfIdentityPair) {
  auto i = Matrix<double>::identity(4);
  EXPECT_DOUBLE_EQ(inverse_residual(i, i), 0.0);
  // Residual of (I, 2I) is ||I - 2I||_F = 2.
  EXPECT_DOUBLE_EQ(inverse_residual(i, i * 2.0), 2.0);
}

TEST(NormsTest, SeedAdmissibilityMatchesDefinition) {
  auto a = Matrix<double>::identity(3) * 4.0;
  // V0 = 0.25 I is the exact inverse -> residual 0 -> admissible.
  EXPECT_TRUE(newton_seed_admissible(a, Matrix<double>::identity(3) * 0.25));
  // V0 = I gives ||I - 4I|| = 3 -> inadmissible.
  EXPECT_FALSE(newton_seed_admissible(a, Matrix<double>::identity(3)));
}

TEST(NormsTest, ZeroMatrixNorms) {
  Matrix<double> z(3, 3);
  EXPECT_DOUBLE_EQ(one_norm(z), 0.0);
  EXPECT_DOUBLE_EQ(two_norm_estimate(z), 0.0);
  EXPECT_DOUBLE_EQ(frobenius_norm(z), 0.0);
}

}  // namespace
}  // namespace kalmmind::linalg
