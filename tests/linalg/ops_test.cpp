#include "linalg/ops.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "../test_util.hpp"
#include "linalg/random.hpp"

namespace kalmmind::linalg {
namespace {

using kalmmind::testing::expect_matrix_near;
using kalmmind::testing::expect_vector_near;
using kalmmind::testing::naive_multiply;

TEST(OpsTest, MultiplyMatchesHandComputed) {
  Matrix<double> a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix<double> b(3, 2, {7, 8, 9, 10, 11, 12});
  auto c = multiply(a, b);
  Matrix<double> want(2, 2, {58, 64, 139, 154});
  expect_matrix_near(c, want, 1e-12);
}

TEST(OpsTest, MultiplyInnerDimMismatchThrows) {
  Matrix<double> a(2, 3);
  Matrix<double> b(2, 2);
  Matrix<double> c;
  EXPECT_THROW(multiply_into(c, a, b), std::invalid_argument);
}

TEST(OpsTest, MultiplyRejectsAliasedOutput) {
  Matrix<double> a(2, 2, {1, 2, 3, 4});
  Matrix<double> b = a;
  EXPECT_THROW(multiply_into(a, a, b), std::invalid_argument);
}

// Property sweep: optimized kernels match the naive reference across shapes.
class KernelSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(KernelSweep, MultiplyMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(std::uint64_t(m * 10007 + k * 101 + n));
  auto a = random_matrix<double>(m, k, rng);
  auto b = random_matrix<double>(k, n, rng);
  expect_matrix_near(multiply(a, b), naive_multiply(a, b), 1e-10 * k);
}

TEST_P(KernelSweep, MultiplyBtMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(std::uint64_t(m + 31 * k + 997 * n));
  auto a = random_matrix<double>(m, k, rng);
  auto b = random_matrix<double>(n, k, rng);  // B^t is k x n
  expect_matrix_near(multiply_bt(a, b), multiply(a, b.transposed()),
                     1e-10 * k);
}

TEST_P(KernelSweep, MultiplyAtMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(std::uint64_t(7 * m + k + 13 * n));
  auto a = random_matrix<double>(k, m, rng);  // A^t is m x k
  auto b = random_matrix<double>(k, n, rng);
  expect_matrix_near(multiply_at(a, b), multiply(a.transposed(), b),
                     1e-10 * k);
}

// The blocked kernels keep one accumulator per output element and walk the
// shared dimension in the same (ascending) order as the naive reference, so
// they must match it BIT-FOR-BIT — not just within tolerance.  This is what
// lets the filter keep its exact-reproducibility guarantees after the
// blocking rework (docs/performance.md).
// The blocked kernels use the SAME per-element accumulation order as the
// naive reference (one accumulator per output element, shared dimension
// ascending), so any remaining difference comes only from the compiler
// contracting multiply-add into FMA differently across the two loop
// structures — bounded by a few ulps of the dot product.  The tolerance
// scales with the shared dimension k (each fused term can shift the
// running sum by one ulp).
TEST_P(KernelSweep, BlockedKernelsMatchNaiveWithinFmaContraction) {
  auto [m, k, n] = GetParam();
  Rng rng(std::uint64_t(3 * m + 17 * k + 29 * n));
  // Inputs in [-1, 1] => |dot| <= k, ulp(dot) <= k * eps.
  const double tol = 4.0 * double(k) * std::numeric_limits<double>::epsilon();
  auto a = random_matrix<double>(m, k, rng);
  auto b = random_matrix<double>(k, n, rng);
  expect_matrix_near(multiply(a, b), naive_multiply(a, b), tol, "nn");

  auto bt = random_matrix<double>(n, k, rng);
  expect_matrix_near(multiply_bt(a, bt), naive_multiply(a, bt.transposed()),
                     tol, "nt");

  auto at = random_matrix<double>(k, m, rng);
  expect_matrix_near(multiply_at(at, b), naive_multiply(at.transposed(), b),
                     tol, "tn");

  // And against the retained naive namespace kernels.
  Matrix<double> want;
  naive::multiply_into(want, a, b);
  expect_matrix_near(multiply(a, b), want, tol, "nn vs naive ns");
  naive::multiply_bt_into(want, a, bt);
  expect_matrix_near(multiply_bt(a, bt), want, tol, "nt vs naive ns");
  naive::multiply_at_into(want, at, b);
  expect_matrix_near(multiply_at(at, b), want, tol, "tn vs naive ns");
}

// Every _into kernel must fully overwrite a reused output: stale sentinel
// values from a previous (differently shaped) use must never leak through
// the resize_for_overwrite fast path.
TEST_P(KernelSweep, IntoKernelsOverwriteStaleOutputs) {
  auto [m, k, n] = GetParam();
  Rng rng(std::uint64_t(11 * m + 5 * k + 7 * n));
  auto a = random_matrix<double>(m, k, rng);
  auto b = random_matrix<double>(k, n, rng);
  auto bt = random_matrix<double>(n, k, rng);
  auto at = random_matrix<double>(k, m, rng);

  // Pre-size stale outputs with a DIFFERENT shape but same-or-larger
  // element count, so resize_for_overwrite takes the no-write path.
  const auto stale = [] { return Matrix<double>(61, 3, 99.0); };

  Matrix<double> c = stale(), fresh;
  multiply_into(c, a, b);
  multiply_into(fresh, a, b);
  expect_matrix_near(c, fresh, 0.0, "multiply_into");

  c = stale();
  multiply_bt_into(c, a, bt);
  multiply_bt_into(fresh, a, bt);
  expect_matrix_near(c, fresh, 0.0, "multiply_bt_into");

  c = stale();
  multiply_at_into(c, at, b);
  multiply_at_into(fresh, at, b);
  expect_matrix_near(c, fresh, 0.0, "multiply_at_into");

  c = stale();
  transpose_into(c, a);
  transpose_into(fresh, a);
  expect_matrix_near(c, fresh, 0.0, "transpose_into");

  Vector<double> x = random_vector<double>(k, rng);
  Vector<double> y(200, 99.0), y_fresh;
  multiply_into(y, a, x);
  multiply_into(y_fresh, a, x);
  expect_vector_near(y, y_fresh, 0.0, "matvec");
}

TEST(OpsTest, SquareIntoKernelsOverwriteStaleOutputs) {
  Rng rng(77);
  const std::size_t n = 9;
  auto a = random_matrix<double>(n, n, rng);
  auto v = random_matrix<double>(n, n, rng);
  const auto stale = [] { return Matrix<double>(4, 31, 99.0); };

  Matrix<double> c = stale(), fresh;
  two_i_minus_product_into(c, a, v);
  two_i_minus_product_into(fresh, a, v);
  expect_matrix_near(c, fresh, 0.0, "two_i_minus_product_into");

  c = stale();
  identity_minus_into(c, a);
  identity_minus_into(fresh, a);
  expect_matrix_near(c, fresh, 0.0, "identity_minus_into");

  auto p = random_matrix<double>(n, n, rng);
  symmetrize(p);
  c = stale();
  Matrix<double> scr1(2, 2, 99.0), scr2;
  multiply_bt_symmetric_into(c, a, v);
  multiply_bt_symmetric_into(fresh, a, v);
  expect_matrix_near(c, fresh, 0.0, "multiply_bt_symmetric_into");

  c = stale();
  symmetric_sandwich_into(c, a, p, scr1);
  symmetric_sandwich_into(fresh, a, p, scr2);
  expect_matrix_near(c, fresh, 0.0, "symmetric_sandwich_into");
}

TEST(OpsTest, SymmetricBtMatchesFullProductOnUpperAndIsExactlySymmetric) {
  Rng rng(21);
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 8u, 13u, 46u}) {
    auto p = random_matrix<double>(n, n, rng);
    symmetrize(p);
    // A = X*P with symmetric P, so the product A * X^t is symmetric.
    auto x = random_matrix<double>(n, n, rng);
    Matrix<double> xp;
    multiply_into(xp, x, p);
    Matrix<double> full, sym;
    multiply_bt_into(full, xp, x);
    multiply_bt_symmetric_into(sym, xp, x);
    // Upper triangle (incl. diagonal): bit-identical to the full product.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i; j < n; ++j)
        EXPECT_EQ(sym(i, j), full(i, j)) << "upper (" << i << "," << j << ")";
    // Whole matrix: exactly symmetric by construction.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_EQ(sym(i, j), sym(j, i)) << "mirror (" << i << "," << j << ")";
  }
}

TEST(OpsTest, SymmetricBtRejectsNonSquareOutput) {
  Matrix<double> a(3, 4), b(2, 4), c;
  EXPECT_THROW(multiply_bt_symmetric_into(c, a, b), std::invalid_argument);
}

TEST(OpsTest, SymmetricSandwichMatchesComposedProducts) {
  Rng rng(31);
  for (auto [rows, inner] : {std::pair<std::size_t, std::size_t>{6, 6},
                             {46, 6}, {5, 9}, {1, 1}}) {
    auto x = random_matrix<double>(rows, inner, rng);
    auto p = random_matrix<double>(inner, inner, rng);
    symmetrize(p);
    Matrix<double> xp_scratch, got;
    symmetric_sandwich_into(got, x, p, xp_scratch);
    Matrix<double> xp, want;
    multiply_into(xp, x, p);
    multiply_bt_into(want, xp, x);
    expect_matrix_near(got, want, 1e-12 * double(inner), "sandwich");
    // The scratch holds the X*P panel afterwards (the filter reuses it).
    expect_matrix_near(xp_scratch, xp, 0.0, "sandwich scratch");
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < rows; ++j)
        EXPECT_EQ(got(i, j), got(j, i));
  }
}

TEST(OpsTest, SymmetricSandwichRejectsAliasedScratch) {
  Matrix<double> x(2, 2, {1, 0, 0, 1});
  Matrix<double> p(2, 2, {2, 0, 0, 2});
  Matrix<double> c;
  EXPECT_THROW(symmetric_sandwich_into(c, x, p, c), std::invalid_argument);
  EXPECT_THROW(symmetric_sandwich_into(c, x, p, p), std::invalid_argument);
}

TEST(OpsTest, TransposeIntoMatchesTransposed) {
  Rng rng(41);
  auto a = random_matrix<double>(7, 13, rng);
  Matrix<double> t;
  transpose_into(t, a);
  expect_matrix_near(t, a.transposed(), 0.0);
  EXPECT_THROW(transpose_into(a, a), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(6, 6, 6), std::make_tuple(1, 16, 5),
                      std::make_tuple(6, 46, 46), std::make_tuple(17, 9, 33),
                      std::make_tuple(5, 7, 9), std::make_tuple(13, 4, 2),
                      std::make_tuple(164, 6, 3), std::make_tuple(3, 6, 164),
                      std::make_tuple(52, 52, 52)));

TEST(OpsTest, MatVecMatchesManual) {
  Matrix<double> a(2, 3, {1, 2, 3, 4, 5, 6});
  Vector<double> x{1, 0, -1};
  auto y = multiply(a, x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(OpsTest, MatVecSizeMismatchThrows) {
  Matrix<double> a(2, 3);
  Vector<double> x(2);
  Vector<double> y;
  EXPECT_THROW(multiply_into(y, a, x), std::invalid_argument);
}

TEST(OpsTest, DotProduct) {
  Vector<double> a{1, 2, 3};
  Vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  Vector<double> c{1};
  EXPECT_THROW(dot(a, c), std::invalid_argument);
}

TEST(OpsTest, TwoIMinusProductMatchesComposition) {
  Rng rng(5);
  auto a = random_matrix<double>(8, 8, rng);
  auto v = random_matrix<double>(8, 8, rng);
  Matrix<double> fused;
  two_i_minus_product_into(fused, a, v);
  Matrix<double> composed = Matrix<double>::identity(8) * 2.0 - multiply(a, v);
  expect_matrix_near(fused, composed, 1e-12);
}

TEST(OpsTest, TwoIMinusProductRequiresSquare) {
  Matrix<double> a(2, 3), v(3, 2), out;
  EXPECT_THROW(two_i_minus_product_into(out, a, v), std::invalid_argument);
}

TEST(OpsTest, SymmetrizeAveragesOffDiagonal) {
  Matrix<double> m(2, 2, {1, 4, 2, 5});
  symmetrize(m);
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST(OpsTest, IdentityMinus) {
  Matrix<double> m(2, 2, {0.5, 1.0, -1.0, 2.0});
  auto r = identity_minus(m);
  EXPECT_DOUBLE_EQ(r(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(r(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(r(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(r(1, 1), -1.0);
}

TEST(OpsTest, DiagonalExtraction) {
  Matrix<double> m(2, 3, {1, 2, 3, 4, 5, 6});
  auto d = diagonal(m);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(OpsTest, MultiplyIntoAccumulatesFromOutput) {
  // multiply_into overwrites its output; reusing a dirty matrix must equal
  // the product into a fresh one.
  Rng rng(9);
  auto a = random_matrix<double>(4, 4, rng);
  auto b = random_matrix<double>(4, 4, rng);
  Matrix<double> c(4, 4, 99.0);  // stale content must not leak in
  multiply_into(c, a, b);
  Matrix<double> fresh;
  multiply_into(fresh, a, b);
  expect_matrix_near(c, fresh, 0.0);
}

}  // namespace
}  // namespace kalmmind::linalg
