#include "linalg/ops.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "linalg/random.hpp"

namespace kalmmind::linalg {
namespace {

using kalmmind::testing::expect_matrix_near;
using kalmmind::testing::expect_vector_near;
using kalmmind::testing::naive_multiply;

TEST(OpsTest, MultiplyMatchesHandComputed) {
  Matrix<double> a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix<double> b(3, 2, {7, 8, 9, 10, 11, 12});
  auto c = multiply(a, b);
  Matrix<double> want(2, 2, {58, 64, 139, 154});
  expect_matrix_near(c, want, 1e-12);
}

TEST(OpsTest, MultiplyInnerDimMismatchThrows) {
  Matrix<double> a(2, 3);
  Matrix<double> b(2, 2);
  Matrix<double> c;
  EXPECT_THROW(multiply_into(c, a, b), std::invalid_argument);
}

TEST(OpsTest, MultiplyRejectsAliasedOutput) {
  Matrix<double> a(2, 2, {1, 2, 3, 4});
  Matrix<double> b = a;
  EXPECT_THROW(multiply_into(a, a, b), std::invalid_argument);
}

// Property sweep: optimized kernels match the naive reference across shapes.
class KernelSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(KernelSweep, MultiplyMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(std::uint64_t(m * 10007 + k * 101 + n));
  auto a = random_matrix<double>(m, k, rng);
  auto b = random_matrix<double>(k, n, rng);
  expect_matrix_near(multiply(a, b), naive_multiply(a, b), 1e-10 * k);
}

TEST_P(KernelSweep, MultiplyBtMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(std::uint64_t(m + 31 * k + 997 * n));
  auto a = random_matrix<double>(m, k, rng);
  auto b = random_matrix<double>(n, k, rng);  // B^t is k x n
  expect_matrix_near(multiply_bt(a, b), multiply(a, b.transposed()),
                     1e-10 * k);
}

TEST_P(KernelSweep, MultiplyAtMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(std::uint64_t(7 * m + k + 13 * n));
  auto a = random_matrix<double>(k, m, rng);  // A^t is m x k
  auto b = random_matrix<double>(k, n, rng);
  expect_matrix_near(multiply_at(a, b), multiply(a.transposed(), b),
                     1e-10 * k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(6, 6, 6), std::make_tuple(1, 16, 5),
                      std::make_tuple(6, 46, 46), std::make_tuple(17, 9, 33),
                      std::make_tuple(52, 52, 52)));

TEST(OpsTest, MatVecMatchesManual) {
  Matrix<double> a(2, 3, {1, 2, 3, 4, 5, 6});
  Vector<double> x{1, 0, -1};
  auto y = multiply(a, x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(OpsTest, MatVecSizeMismatchThrows) {
  Matrix<double> a(2, 3);
  Vector<double> x(2);
  Vector<double> y;
  EXPECT_THROW(multiply_into(y, a, x), std::invalid_argument);
}

TEST(OpsTest, DotProduct) {
  Vector<double> a{1, 2, 3};
  Vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  Vector<double> c{1};
  EXPECT_THROW(dot(a, c), std::invalid_argument);
}

TEST(OpsTest, TwoIMinusProductMatchesComposition) {
  Rng rng(5);
  auto a = random_matrix<double>(8, 8, rng);
  auto v = random_matrix<double>(8, 8, rng);
  Matrix<double> fused;
  two_i_minus_product_into(fused, a, v);
  Matrix<double> composed = Matrix<double>::identity(8) * 2.0 - multiply(a, v);
  expect_matrix_near(fused, composed, 1e-12);
}

TEST(OpsTest, TwoIMinusProductRequiresSquare) {
  Matrix<double> a(2, 3), v(3, 2), out;
  EXPECT_THROW(two_i_minus_product_into(out, a, v), std::invalid_argument);
}

TEST(OpsTest, SymmetrizeAveragesOffDiagonal) {
  Matrix<double> m(2, 2, {1, 4, 2, 5});
  symmetrize(m);
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST(OpsTest, IdentityMinus) {
  Matrix<double> m(2, 2, {0.5, 1.0, -1.0, 2.0});
  auto r = identity_minus(m);
  EXPECT_DOUBLE_EQ(r(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(r(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(r(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(r(1, 1), -1.0);
}

TEST(OpsTest, DiagonalExtraction) {
  Matrix<double> m(2, 3, {1, 2, 3, 4, 5, 6});
  auto d = diagonal(m);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(OpsTest, MultiplyIntoAccumulatesFromOutput) {
  // multiply_into adds into the (resized, zeroed) output; calling it on a
  // fresh matrix must equal the plain product even after reuse.
  Rng rng(9);
  auto a = random_matrix<double>(4, 4, rng);
  auto b = random_matrix<double>(4, 4, rng);
  Matrix<double> c(4, 4, 99.0);  // stale content must not leak in
  multiply_into(c, a, b);
  Matrix<double> fresh;
  multiply_into(fresh, a, b);
  expect_matrix_near(c, fresh, 0.0);
}

}  // namespace
}  // namespace kalmmind::linalg
