// Runtime SIMD dispatch (docs/performance.md): every tier this host can
// run, forced through set_dispatch_tier(), must agree with linalg::naive::
// under the FMA-contraction-only contract — same accumulation order, the
// only permitted delta is fused vs unfused multiply-add rounding — across
// the paper's dims (x=6, z in {46, 164}) and odd/remainder shapes that
// exercise each tier's partial-vector tails.  The symmetric kernel's
// exact-symmetry guarantee and the batched panel kernel's bit-identity to
// per-column solo products must hold per tier, not just on the default.
#include "linalg/simd/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <tuple>
#include <vector>

#include "../test_util.hpp"
#include "linalg/linalg.hpp"
#include "telemetry/telemetry.hpp"

namespace kalmmind::linalg {
namespace {

namespace simd = kalmmind::linalg::simd;

// Restores the entry tier even when an assertion aborts the test body.
class TierGuard {
 public:
  explicit TierGuard(simd::Tier t) : prev_(simd::active_tier()) {
    EXPECT_TRUE(simd::set_dispatch_tier(t))
        << "tier " << simd::tier_name(t) << " reported available but "
        << "refused to activate";
  }
  ~TierGuard() { simd::set_dispatch_tier(prev_); }

 private:
  simd::Tier prev_;
};

// FMA-contraction bound: one accumulator per element over a length-k sum
// of O(1) terms leaves at most k half-ulp differences between fused and
// unfused rounding.  The 4x slack absorbs the final rounding of either
// side without ever excusing a reordered accumulation.
double fma_tol(std::size_t k) {
  return 4.0 * double(k) * std::numeric_limits<double>::epsilon();
}

// Paper dims (x=6 against both measurement sizes) plus remainder shapes:
// dimensions straddling every tier's vector width (2/4/8/16 lanes) so the
// masked / partial tails run, not just the full-vector body.
const std::vector<std::tuple<int, int, int>> kShapes = {
    {6, 6, 6},   {46, 6, 46},  {164, 6, 164}, {6, 46, 6},  {6, 164, 6},
    {1, 1, 1},   {3, 5, 7},    {9, 2, 17},    {15, 6, 33}, {17, 17, 31},
    {8, 8, 8},   {16, 4, 16},  {5, 164, 13},
};

TEST(SimdDispatch, AvailableTiersStartWithScalarAndIncludeDetected) {
  const auto tiers = simd::available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::Tier::kScalar);
  bool has_detected = false;
  for (const simd::Tier t : tiers) {
    if (t == simd::detect()) has_detected = true;
  }
  EXPECT_TRUE(has_detected);
}

TEST(SimdDispatch, SetDispatchTierAcceptsExactlyTheAvailableTiers) {
  const simd::Tier entry = simd::active_tier();
  const auto tiers = simd::available_tiers();
  for (const simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512,
        simd::Tier::kNeon}) {
    bool available = false;
    for (const simd::Tier a : tiers) available = available || a == t;
    EXPECT_EQ(simd::set_dispatch_tier(t), available)
        << simd::tier_name(t);
    if (!available) {
      // A refused tier must leave the active table untouched.
      EXPECT_NE(simd::active_tier(), t);
    }
  }
  simd::set_dispatch_tier(entry);
}

TEST(SimdDispatch, ParseAndNameRoundTrip) {
  for (const simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512,
        simd::Tier::kNeon}) {
    const auto parsed = simd::parse_tier(simd::tier_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(simd::parse_tier("sse9").has_value());
  EXPECT_FALSE(simd::parse_tier("").has_value());
}

TEST(SimdDispatch, TierGaugeTracksSetDispatchTier) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  const simd::Tier entry = simd::active_tier();
  auto& gauge = telemetry::MetricsRegistry::global().gauge(
      "kalmmind.linalg.simd_tier");
  for (const simd::Tier t : simd::available_tiers()) {
    TierGuard guard(t);
    EXPECT_EQ(gauge.value(), double(int(t))) << simd::tier_name(t);
  }
  EXPECT_EQ(gauge.value(), double(int(entry)));
}

TEST(SimdDispatch, GemmFamilyMatchesNaivePerTierAcrossShapes) {
  for (const simd::Tier tier : simd::available_tiers()) {
    TierGuard guard(tier);
    for (const auto& [m, k, n] : kShapes) {
      SCOPED_TRACE(std::string(simd::tier_name(tier)) + " m=" +
                   std::to_string(m) + " k=" + std::to_string(k) + " n=" +
                   std::to_string(n));
      Rng rng(std::uint64_t(m * 7919 + k * 131 + n + int(tier)));
      const auto a = random_matrix<double>(m, k, rng);
      const auto b = random_matrix<double>(k, n, rng);
      const auto bt = b.transposed();  // n x k
      const auto at = a.transposed();  // k x m

      Matrix<double> got, want;
      multiply_into(got, a, b);
      naive::multiply_into(want, a, b);
      testing::expect_matrix_near(got, want, fma_tol(k), "gemm_nn");

      multiply_bt_into(got, a, bt);
      naive::multiply_bt_into(want, a, bt);
      testing::expect_matrix_near(got, want, fma_tol(k), "gemm_nt");

      multiply_at_into(got, at, b);
      naive::multiply_at_into(want, at, b);
      testing::expect_matrix_near(got, want, fma_tol(k), "gemm_tn");
    }
  }
}

TEST(SimdDispatch, SymmetricKernelExactlySymmetricPerTier) {
  for (const simd::Tier tier : simd::available_tiers()) {
    TierGuard guard(tier);
    for (const auto [n, k] : {std::pair{46, 6}, {164, 6}, {7, 5}, {17, 3},
                              {33, 9}, {1, 1}}) {
      SCOPED_TRACE(std::string(simd::tier_name(tier)) + " n=" +
                   std::to_string(n) + " k=" + std::to_string(k));
      // An A * B^t the caller knows is symmetric: B = A * S with S
      // symmetric makes A S A^t symmetric.
      Rng rng(std::uint64_t(n * 31 + k + int(tier)));
      const auto a = random_matrix<double>(n, k, rng);
      const auto s = random_spd<double>(std::size_t(k), rng, 1.0);
      Matrix<double> b_mat;
      multiply_into(b_mat, a, s);  // n x k

      Matrix<double> sym, full, want;
      multiply_bt_symmetric_into(sym, a, b_mat);
      multiply_bt_into(full, a, b_mat);
      naive::multiply_bt_into(want, a, b_mat);

      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          // Exact symmetry, and the upper triangle bit-identical to the
          // same tier's full product (the lower is its mirror).
          ASSERT_EQ(sym(i, j), sym(j, i)) << i << "," << j;
          if (j >= i) ASSERT_EQ(sym(i, j), full(i, j)) << i << "," << j;
        }
      }
      testing::expect_matrix_near(sym, want, fma_tol(k), "syrk_nt");
    }
  }
}

TEST(SimdDispatch, BatchedPanelBitIdenticalToSoloColumnsPerTier) {
  for (const simd::Tier tier : simd::available_tiers()) {
    TierGuard guard(tier);
    for (const auto [q, k, m] : {std::tuple{6, 6, 33}, {6, 6, 64}, {2, 6, 7},
                                 {6, 2, 5}, {3, 3, 1}}) {
      SCOPED_TRACE(std::string(simd::tier_name(tier)) + " q=" +
                   std::to_string(q) + " k=" + std::to_string(k) + " m=" +
                   std::to_string(m));
      Rng rng(std::uint64_t(q * 1009 + k * 53 + m + int(tier)));
      const auto coeff = random_matrix<double>(q, k, rng);
      const auto panel = random_matrix<double>(k, m, rng);

      Matrix<double> batched;
      batched_multiply_into(batched, coeff, panel);

      // Solo reference: each panel column through the same tier's
      // matrix-vector product, the path a non-batched session takes.
      Vector<double> col(static_cast<std::size_t>(k));
      Vector<double> solo;
      for (int j = 0; j < m; ++j) {
        for (int p = 0; p < k; ++p) col[std::size_t(p)] = panel(p, j);
        multiply_into(solo, coeff, col);
        for (int i = 0; i < q; ++i) {
          ASSERT_EQ(batched(i, j), solo[std::size_t(i)])
              << "col " << j << " row " << i;
        }
      }
    }
  }
}

TEST(SimdDispatch, CholeskyAndLuStayCorrectPerTier) {
  for (const simd::Tier tier : simd::available_tiers()) {
    TierGuard guard(tier);
    for (const int n : {6, 17, 46}) {
      SCOPED_TRACE(std::string(simd::tier_name(tier)) + " n=" +
                   std::to_string(n));
      Rng rng(std::uint64_t(n + 977 * int(tier)));
      const auto a = random_spd<double>(std::size_t(n), rng, 2.0);
      const auto inv_chol = invert_cholesky(a);
      EXPECT_LT(inverse_residual(a, inv_chol), 1e-8);
      const auto inv_lu = invert_lu(a);
      EXPECT_LT(inverse_residual(a, inv_lu), 1e-8);
    }
    Matrix<double> indefinite(2, 2, {1.0, 2.0, 2.0, 1.0});
    EXPECT_THROW(cholesky_factor(indefinite), NotPositiveDefiniteError);
  }
}

}  // namespace
}  // namespace kalmmind::linalg
