// Clean fixture: a synthesizable-subset kernel in HLS idiom — bounded
// loops, plain arrays, no heap, no exceptions.  Must produce 0 findings
// even though every rule family applies to an hlskernel path.
#pragma once

namespace fx {

template <typename T, int MAX_N>
struct DotKernel {
  T acc_[MAX_N] = {};

  T run(const T* a, const T* b, int n) {
    T sum = T(0);
    // #pragma HLS pipeline II=1
    for (int i = 0; i < n && i < MAX_N; ++i) {
      acc_[i] = a[i] * b[i];
      sum += acc_[i];
    }
    return sum;
  }
};

}  // namespace fx
