// R2 fixture: a Status-returning declaration without [[nodiscard]]
// (line 6) and an expression statement discarding check() (line 10).
#pragma once
namespace fx {
struct Config {
  Status check() const noexcept;
  [[nodiscard]] Status checked() const noexcept;  // annotated: clean
};
inline void consume(const Config& c) {
  c.check();
  if (Status s = c.check(); s.ok()) (void)s;  // consumed: clean
}
}  // namespace fx
