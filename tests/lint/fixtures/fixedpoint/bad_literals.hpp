// R3 fixture: raw floating-point literals with no explicit double context
// (lines 5 and 8); line 7 names `double` on the line and is clean.
#pragma once
namespace fx {
inline int scale(int x) { return int(x * 2.5); }

inline double fine() { return 0.25; }
inline auto gain() { return 1e-3; }
inline auto cast_ok(int x) { return fixed_cast<int>(x * 0.5); }  // clean
}  // namespace fx
