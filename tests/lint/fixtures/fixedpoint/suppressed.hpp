// Suppression fixture: allow-file(R3) silences every literal finding in
// the file; the test asserts zero findings.
// kalmmind-lint: allow-file(R3) fixture exercises whole-file suppression
#pragma once
namespace fx {
inline int scale(int x) { return int(x * 2.5); }
inline auto gain() { return 1e-3; }
}  // namespace fx
