// R1 fixture: direct recursion (line 4), plus a non-recursive function
// whose body calls a *different* function — which must not be flagged.
int fact(int n) {
  return n <= 1 ? 1 : n * fact(n - 1);
}
int helper(int n) { return n + 1; }
int caller(int n) { return helper(n); }
