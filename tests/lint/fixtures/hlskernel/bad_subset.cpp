// R1 fixture: one banned construct per line, at line numbers the test
// asserts exactly.  Never compiled — lint input only.

void* heap() { return new int[4]; }
void heap_free(void* p) { free(p); }
std::vector<int> global_vec;
void boom() { throw 1; }
struct Base { virtual void run(); };
void spin() {
  while (true) {}
  for (;;) {}
}
