// Suppression fixture: a line-level allow(R1) silences a single banned
// construct; the unsuppressed one below it must still be reported.
void* host_only_setup() {
  return new int[4];  // kalmmind-lint: allow(R1) host-side test scaffolding
}
void* still_bad() { return new int[4]; }
