// rtcheck fixture: an allow(RT1) with no justification must NOT silence
// the finding; the report appends a "waiver ignored" note instead.
#pragma once
#include <vector>
namespace fx {
class BareCache {
 public:
  void step() KALMMIND_REALTIME {
    ring_.push_back(1);  // kalmmind-lint: allow(RT1)
  }

 private:
  std::vector<int> ring_;
};
}  // namespace fx
