// rtcheck fixture: mutual recursion reachable from a root.  The BFS must
// terminate and still report the one genuine violation inside the cycle.
#pragma once
namespace fx {

inline void pong(int n);

inline void ping(int n) {
  if (n > 0) pong(n - 1);
}

inline void pong(int n) {
  if (n > 0) ping(n - 1);
  throw n;
}

class Loop {
 public:
  void step() KALMMIND_REALTIME { ping(3); }
};

}  // namespace fx
