// rtcheck fixture: a realtime root violating RT1 in its own body.  The
// test pins the exact line and the single-element chain.
#pragma once
namespace fx {
class DirectFilter {
 public:
  void step() KALMMIND_REALTIME {
    data_ = new int[4];
  }

 private:
  int* data_ = nullptr;
};
}  // namespace fx
