// rtcheck fixture: the SIMD dispatch shape.  A load-time probe does
// getenv + CPUID work (RT4) and swaps a table pointer; the realtime root
// only dereferences the published table.  The test pins that the probe is
// flagged when a root reaches it and clean when only the lookup is
// reachable — the guarantee linalg/simd/dispatch.cpp relies on.
#pragma once
namespace fx {

struct ProbeFilter {
  // The load-time resolver: environment override plus CPU probe.  Nothing
  // marked KALMMIND_REALTIME may reach this.
  void resolve_tier() {
    const char* env = getenv("FX_SIMD");
    (void)env;
    probe_ok_ = __builtin_cpu_supports("avx2");
  }

  // The hot path: a plain table read, no probing.
  void step() KALMMIND_REALTIME { value_ = table_[0]; }

  // A bad hot path that re-resolves per step: the chain the analyzer must
  // report (step_reprobe -> resolve_tier -> getenv/CPU probe).
  void step_reprobe() KALMMIND_REALTIME { resolve_tier(); }

  bool probe_ok_ = false;
  int value_ = 0;
  int table_[4] = {0, 0, 0, 0};
};

}  // namespace fx
