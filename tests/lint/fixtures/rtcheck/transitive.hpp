// rtcheck fixture: the violation sits two call edges below the annotated
// root.  The test pins the full reported chain root -> helper -> leaf and
// the exact line of the allocation.
#pragma once
namespace fx {

inline int* leaf_alloc() {
  return new int[8];
}

inline int* helper() {
  return leaf_alloc();
}

class Pipeline {
 public:
  void step() KALMMIND_REALTIME { buf_ = helper(); }

 private:
  int* buf_ = nullptr;
};

}  // namespace fx
