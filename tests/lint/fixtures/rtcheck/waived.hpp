// rtcheck fixture: a justified allow(RT1) waiver on the violating line.
// The test asserts zero findings and that the waiver is listed as used.
#pragma once
#include <vector>
namespace fx {
class WaivedCache {
 public:
  void step() KALMMIND_REALTIME {
    // kalmmind-lint: allow(RT1) ring grows once during warm-up, before serving begins
    ring_.push_back(1);
  }

 private:
  std::vector<int> ring_;
};
}  // namespace fx
