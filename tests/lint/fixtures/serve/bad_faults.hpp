// R5 fixture: fault-injection API used outside a KALMMIND_FAULTS gate.
#pragma once
#include "testing/fault_injection.hpp"

inline void storm() {
  kalmmind::testing::FaultInjector injector(7);
#if defined(KALMMIND_FAULTS)
  injector.next_u64();
  memory().flip_word_bit(0, 62);
#else
  // The #else of a faults gate is the faults-OFF build: hooks banned here.
  regs().corrupt_register(2, 1);
#endif
}
