// R4 recorder fixture: a direct flight_recorder include (line 4) and an
// unguarded blackbox journal call (line 7); the guarded postmortem on
// line 11 is clean.
#include "telemetry/flight_recorder.hpp"
namespace fx {
inline void journal(telemetry::FlightRecorder& blackbox) {
  blackbox.record_here(telemetry::FlightEventKind::kDeadlineMiss);
}
inline void guarded(telemetry::FlightRecorder& blackbox) {
  if (blackbox.enabled()) {
    blackbox.postmortem(1, "quarantine");
  }
}
}  // namespace fx
