// R4 fixture: a direct registry include (line 3) and an unguarded tracer
// emission (line 6); the guarded call on line 10 is clean.
#include "telemetry/registry.hpp"
namespace fx {
inline void emit(telemetry::SpanTracer& tracer) {
  tracer.counter("fx.queue", 1.0);
}
inline void guarded(telemetry::SpanTracer& tracer) {
  if (tracer.enabled()) {
    tracer.complete("fx.step", "fx", 0.0, 1.0);
  }
}
}  // namespace fx
