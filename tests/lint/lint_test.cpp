// kalmmind-lint rule tests: each fixture under tests/lint/fixtures/ seeds
// known violations; the assertions pin exact rule IDs and line numbers so
// a rule regression (missed or spurious finding, off-by-one) fails loudly.
//
// The fixture directory layout mirrors the path-based rule selection:
// fixtures/hlskernel/* gets R1, fixtures/fixedpoint/* gets R3, and so on.
#include "lint.hpp"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;
using kalmmind::lint::Finding;

const fs::path kFixtures = LINT_FIXTURES_DIR;

std::vector<Finding> lint_fixture(const std::string& rel) {
  const fs::path path = kFixtures / rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return kalmmind::lint::lint_file(fs::path(rel), ss.str());
}

// (rule, line) pairs, order-insensitive.
std::multiset<std::pair<std::string, int>> keys(
    const std::vector<Finding>& findings) {
  std::multiset<std::pair<std::string, int>> out;
  for (const Finding& f : findings) out.emplace(f.rule, f.line);
  return out;
}

using Keys = std::multiset<std::pair<std::string, int>>;

TEST(LintRuleSelection, FollowsPathSegments) {
  auto hls = kalmmind::lint::rules_for_path("src/hlskernel/kernel.cpp");
  EXPECT_TRUE(hls.hls_subset);
  EXPECT_FALSE(hls.fixed_literal);

  auto fixed = kalmmind::lint::rules_for_path("src/fixedpoint/fixed.hpp");
  EXPECT_FALSE(fixed.hls_subset);
  EXPECT_TRUE(fixed.fixed_literal);

  auto telemetry =
      kalmmind::lint::rules_for_path("src/telemetry/tracer.hpp");
  EXPECT_FALSE(telemetry.telemetry_guard);

  auto generic = kalmmind::lint::rules_for_path("src/serve/session.hpp");
  EXPECT_TRUE(generic.status_discipline);
  EXPECT_TRUE(generic.telemetry_guard);
  EXPECT_TRUE(generic.fault_gate);
  EXPECT_TRUE(hls.fault_gate);  // R5 applies everywhere the linter runs
}

TEST(LintR1, FlagsEveryBannedConstructAtExactLines) {
  auto findings = lint_fixture("hlskernel/bad_subset.cpp");
  EXPECT_EQ(keys(findings), (Keys{{"R1", 4},
                                  {"R1", 5},
                                  {"R1", 6},
                                  {"R1", 7},
                                  {"R1", 8},
                                  {"R1", 10},
                                  {"R1", 11}}))
      << kalmmind::lint::format_findings(findings);
}

TEST(LintR1, FlagsDirectRecursionOnly) {
  auto findings = lint_fixture("hlskernel/bad_recursion.cpp");
  EXPECT_EQ(keys(findings), (Keys{{"R1", 4}}))
      << kalmmind::lint::format_findings(findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("fact"), std::string::npos);
}

TEST(LintR2, FlagsMissingNodiscardAndDiscardedCheck) {
  auto findings = lint_fixture("common/bad_status.hpp");
  EXPECT_EQ(keys(findings), (Keys{{"R2", 6}, {"R2", 10}}))
      << kalmmind::lint::format_findings(findings);
}

TEST(LintR3, FlagsRawLiteralsOutsideExplicitDoubleContext) {
  auto findings = lint_fixture("fixedpoint/bad_literals.hpp");
  EXPECT_EQ(keys(findings), (Keys{{"R3", 5}, {"R3", 8}}))
      << kalmmind::lint::format_findings(findings);
}

TEST(LintR3, OnlyAppliesToFixedpointPaths) {
  // The same content under a non-fixedpoint path raises nothing.
  std::ifstream in(kFixtures / "fixedpoint/bad_literals.hpp",
                   std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  auto findings =
      kalmmind::lint::lint_file("serve/bad_literals.hpp", ss.str());
  EXPECT_TRUE(findings.empty())
      << kalmmind::lint::format_findings(findings);
}

TEST(LintR4, FlagsDirectIncludeAndUnguardedEmission) {
  auto findings = lint_fixture("serve/bad_telemetry.hpp");
  EXPECT_EQ(keys(findings), (Keys{{"R4", 3}, {"R4", 6}}))
      << kalmmind::lint::format_findings(findings);
}

TEST(LintR4, FlagsRecorderIncludeAndUnguardedJournalCall) {
  // The flight-recorder extension of R4: line 4 includes the recorder
  // header directly, line 7 journals without an enabled() guard; the
  // guarded postmortem on line 11 raises nothing.
  auto findings = lint_fixture("serve/bad_recorder.hpp");
  EXPECT_EQ(keys(findings), (Keys{{"R4", 4}, {"R4", 7}}))
      << kalmmind::lint::format_findings(findings);
}

TEST(LintR5, FlagsUngatedFaultApiIncludingElseOfInvertedGate) {
  // Line 3: ungated include; line 6: ungated FaultInjector; line 12:
  // corrupt_register in the #else (faults-OFF) branch of the gate.  The
  // gated lines 8-9 raise nothing.
  auto findings = lint_fixture("serve/bad_faults.hpp");
  EXPECT_EQ(keys(findings), (Keys{{"R5", 3}, {"R5", 6}, {"R5", 12}}))
      << kalmmind::lint::format_findings(findings);
}

TEST(LintR5, InvertedGateElseBranchIsGated) {
  // #ifndef KALMMIND_FAULTS: the *else* branch is the faults-ON build, so
  // hooks are legal there and banned in the primary branch.
  const std::string content =
      "#ifndef KALMMIND_FAULTS\n"
      "inline void no_op(double&) { /* corrupt_raw lives in comments */ }\n"
      "fixed.corrupt_raw(1);\n"
      "#else\n"
      "fixed.corrupt_raw(1);\n"
      "#endif\n";
  auto findings = kalmmind::lint::lint_file("serve/inverted.hpp", content);
  EXPECT_EQ(keys(findings), (Keys{{"R5", 3}}))
      << kalmmind::lint::format_findings(findings);
}

TEST(LintSuppression, AllowFileSilencesWholeFile) {
  auto findings = lint_fixture("fixedpoint/suppressed.hpp");
  EXPECT_TRUE(findings.empty())
      << kalmmind::lint::format_findings(findings);
}

TEST(LintSuppression, AllowLineSilencesOnlyThatLine) {
  auto findings = lint_fixture("hlskernel/suppressed.cpp");
  EXPECT_EQ(keys(findings), (Keys{{"R1", 6}}))
      << kalmmind::lint::format_findings(findings);
}

TEST(LintR6, BareAllowIsItselfAFinding) {
  const std::string content =
      "void* setup() {\n"
      "  return new int[4];  // kalmmind-lint: allow(R1)\n"
      "}\n";
  auto findings =
      kalmmind::lint::lint_file("src/hlskernel/bare.cpp", content);
  EXPECT_EQ(keys(findings), (Keys{{"R6", 2}}))
      << kalmmind::lint::format_findings(findings);
}

TEST(LintR6, BareAllowFileIsFlaggedAndJustifiedOnesAreNot) {
  const std::string content =
      "// kalmmind-lint: allow-file(R3)\n"
      "int x = int(2.5);\n";
  auto findings =
      kalmmind::lint::lint_file("src/fixedpoint/bare.hpp", content);
  EXPECT_EQ(keys(findings), (Keys{{"R6", 1}}))
      << kalmmind::lint::format_findings(findings);

  const std::string justified =
      "// kalmmind-lint: allow-file(R3) fixture data, not arithmetic\n"
      "int x = int(2.5);\n";
  auto clean =
      kalmmind::lint::lint_file("src/fixedpoint/ok.hpp", justified);
  EXPECT_TRUE(clean.empty()) << kalmmind::lint::format_findings(clean);
}

TEST(LintClean, CleanKernelFixtureHasNoFindings) {
  auto findings = lint_fixture("clean/hlskernel/clean_kernel.hpp");
  EXPECT_TRUE(findings.empty())
      << kalmmind::lint::format_findings(findings);
}

TEST(LintDir, AggregatesRecursivelyWithRelativePaths) {
  std::vector<Finding> findings;
  kalmmind::lint::lint_dir(kFixtures, kFixtures / "hlskernel", findings);
  // bad_subset (7) + bad_recursion (1) + suppressed (1).
  EXPECT_EQ(findings.size(), 9u)
      << kalmmind::lint::format_findings(findings);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "R1");
    EXPECT_EQ(fs::path(f.file).is_relative(), true) << f.file;
  }
}

TEST(LintFormat, EmitsFileLineRuleMessage) {
  std::vector<Finding> findings = {{"src/a.hpp", 12, "R2", "msg"}};
  EXPECT_EQ(kalmmind::lint::format_findings(findings),
            "src/a.hpp:12: [R2] msg\n");
}

}  // namespace
