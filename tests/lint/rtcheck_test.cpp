// kalmmind-rtcheck call-graph engine tests.  Fixtures under
// tests/lint/fixtures/rtcheck/ seed the behaviors the analyzer guarantees:
// a direct violation at an exact line, a transitive violation reported
// with its full call chain, a justified waiver honored (and audited as
// used), a bare waiver rejected with a note, and cycle termination.
// Inline-source tests pin the resolution rules the repo sweep depends on
// (qualified suffix match, unqualified lookup skipping inner namespaces,
// unreachable code staying unreported).
#include "rtcheck.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;
using kalmmind::lint::Finding;
using kalmmind::lint::RtReport;
using kalmmind::lint::rtcheck_sources;

const fs::path kFixtures = LINT_FIXTURES_DIR;

std::string read_fixture(const std::string& rel) {
  const fs::path path = kFixtures / rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

RtReport check_fixture(const std::string& rel) {
  return rtcheck_sources({{rel, read_fixture(rel)}});
}

std::string dump(const RtReport& report) {
  return kalmmind::lint::format_findings(report.findings);
}

TEST(RtCheckDirect, FlagsAllocationInRootBodyAtExactLine) {
  RtReport report = check_fixture("rtcheck/direct.hpp");
  ASSERT_EQ(report.findings.size(), 1u) << dump(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.rule, "RT1");
  EXPECT_EQ(f.line, 8);
  EXPECT_NE(f.message.find("fx::DirectFilter::step"), std::string::npos)
      << f.message;
  ASSERT_EQ(report.roots.size(), 1u);
  EXPECT_EQ(report.roots[0], "fx::DirectFilter::step");
}

TEST(RtCheckTransitive, ReportsFullChainFromRootToViolation) {
  RtReport report = check_fixture("rtcheck/transitive.hpp");
  ASSERT_EQ(report.findings.size(), 1u) << dump(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.rule, "RT1");
  EXPECT_EQ(f.line, 8);  // the `new int[8]` inside leaf_alloc
  EXPECT_NE(
      f.message.find("fx::Pipeline::step -> fx::helper -> fx::leaf_alloc"),
      std::string::npos)
      << f.message;
}

TEST(RtCheckWaiver, JustifiedWaiverSilencesAndIsAuditedAsUsed) {
  RtReport report = check_fixture("rtcheck/waived.hpp");
  EXPECT_TRUE(report.findings.empty()) << dump(report);
  ASSERT_EQ(report.waivers.size(), 1u);
  EXPECT_TRUE(report.waivers[0].used);
  EXPECT_FALSE(report.waivers[0].justification.empty());
}

TEST(RtCheckWaiver, BareWaiverIsIgnoredWithANote) {
  RtReport report = check_fixture("rtcheck/bare_waiver.hpp");
  ASSERT_EQ(report.findings.size(), 1u) << dump(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.rule, "RT1");
  EXPECT_NE(f.message.find("waiver ignored: missing justification"),
            std::string::npos)
      << f.message;
}

// The SIMD-dispatch guarantee (src/linalg/simd/dispatch.cpp): getenv and
// CPUID probing are RT4, so a load-time resolver is clean only while no
// KALMMIND_REALTIME root reaches it.  The fixture has both shapes — a hot
// path that just reads the published table, and one that re-resolves per
// step — and the analyzer must flag exactly the latter's chain.
TEST(RtCheckDispatchProbe, ProbeFlaggedOnlyWhenReachableFromRoot) {
  RtReport report = check_fixture("rtcheck/dispatch_probe.hpp");
  ASSERT_EQ(report.findings.size(), 2u) << dump(report);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.rule, "RT4");
    EXPECT_NE(f.message.find("fx::ProbeFilter::step_reprobe -> "
                             "fx::ProbeFilter::resolve_tier"),
              std::string::npos)
        << f.message;
  }
}

TEST(RtCheckCycle, MutualRecursionTerminatesAndStillReports) {
  RtReport report = check_fixture("rtcheck/cycle.hpp");
  ASSERT_EQ(report.findings.size(), 1u) << dump(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.rule, "RT3");
  EXPECT_EQ(f.line, 14);
  EXPECT_NE(f.message.find("fx::Loop::step -> fx::ping -> fx::pong"),
            std::string::npos)
      << f.message;
}

TEST(RtCheckResolution, UnqualifiedCallSkipsInnerNamespaces) {
  const std::string code =
      "namespace fx {\n"
      "inline void f() {}\n"
      "namespace naive {\n"
      "inline void f() { throw 1; }\n"
      "}\n"
      "class K {\n"
      " public:\n"
      "  void step() KALMMIND_REALTIME { f(); }\n"
      "};\n"
      "}\n";
  RtReport report = rtcheck_sources({{"a.hpp", code}});
  EXPECT_TRUE(report.findings.empty()) << dump(report);
}

TEST(RtCheckResolution, QualifiedCallSuffixMatchesInnerNamespace) {
  const std::string code =
      "namespace fx {\n"
      "inline void f() {}\n"
      "namespace naive {\n"
      "inline void f() { throw 1; }\n"
      "}\n"
      "class K {\n"
      " public:\n"
      "  void step() KALMMIND_REALTIME { naive::f(); }\n"
      "};\n"
      "}\n";
  RtReport report = rtcheck_sources({{"a.hpp", code}});
  ASSERT_EQ(report.findings.size(), 1u) << dump(report);
  EXPECT_EQ(report.findings[0].rule, "RT3");
  EXPECT_EQ(report.findings[0].line, 4);
}

TEST(RtCheckReachability, UnreachableViolationIsNotReported) {
  const std::string code =
      "namespace fx {\n"
      "inline void cold() { throw 1; }\n"
      "class K {\n"
      " public:\n"
      "  void step() KALMMIND_REALTIME {}\n"
      "};\n"
      "}\n";
  RtReport report = rtcheck_sources({{"a.hpp", code}});
  EXPECT_TRUE(report.findings.empty()) << dump(report);
  EXPECT_EQ(report.n_reachable, 1u);  // only the root itself
}

TEST(RtCheckReachability, NoRootsMeansNoFindings) {
  const std::string code =
      "namespace fx {\n"
      "inline void hot() { throw 1; }\n"
      "}\n";
  RtReport report = rtcheck_sources({{"a.hpp", code}});
  EXPECT_TRUE(report.findings.empty()) << dump(report);
  EXPECT_TRUE(report.roots.empty());
}

}  // namespace
