// Dataset presets and the end-to-end dataset pipeline.  A reduced spec
// keeps these fast; the real presets are only dimension-checked plus one
// full build of the small hippocampus dataset.
#include "neural/dataset.hpp"

#include <gtest/gtest.h>

#include "kalman/reference.hpp"
#include "linalg/cholesky.hpp"

namespace kalmmind::neural {
namespace {

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.encoding.channels = 20;
  spec.train_steps = 400;
  spec.test_steps = 40;
  spec.seed = 99;
  return spec;
}

TEST(DatasetPresetsTest, PaperDimensions) {
  EXPECT_EQ(motor_spec().z_dim(), 164u);
  EXPECT_EQ(somatosensory_spec().z_dim(), 52u);
  EXPECT_EQ(hippocampus_spec().z_dim(), 46u);
  for (const auto& spec : all_dataset_specs()) {
    EXPECT_EQ(spec.x_dim(), 6u);
    EXPECT_EQ(spec.test_steps, 100u) << spec.name;
    EXPECT_GE(spec.train_steps, 2 * spec.z_dim()) << spec.name;
  }
}

TEST(DatasetPresetsTest, HippocampusUsesPositionTuning) {
  EXPECT_EQ(hippocampus_spec().encoding.tuning, TuningKind::kPosition);
  EXPECT_EQ(motor_spec().encoding.tuning, TuningKind::kVelocity);
}

TEST(DatasetTest, BuildProducesConsistentShapes) {
  auto ds = build_dataset(tiny_spec());
  EXPECT_EQ(ds.model.x_dim(), 6u);
  EXPECT_EQ(ds.model.z_dim(), 20u);
  EXPECT_EQ(ds.test_measurements.size(), 40u);
  EXPECT_EQ(ds.test_kinematics.size(), 40u);
  EXPECT_EQ(ds.channel_means.size(), 20u);
  EXPECT_NO_THROW(ds.model.validate());
}

TEST(DatasetTest, DeterministicForSameSpec) {
  auto a = build_dataset(tiny_spec());
  auto b = build_dataset(tiny_spec());
  EXPECT_TRUE(a.model.h == b.model.h);
  EXPECT_TRUE(a.test_measurements[0] == b.test_measurements[0]);
}

TEST(DatasetTest, DifferentSeedsGiveDifferentData) {
  auto spec = tiny_spec();
  auto a = build_dataset(spec);
  spec.seed = 100;
  auto b = build_dataset(spec);
  EXPECT_FALSE(a.test_measurements[0] == b.test_measurements[0]);
}

TEST(DatasetTest, MeasurementsAreMeanCentered) {
  auto ds = build_dataset(tiny_spec());
  // Channel means were estimated on the training split; the (short) test
  // window mean must be near zero relative to the baseline rate.
  for (std::size_t j = 0; j < ds.model.z_dim(); ++j) {
    double mean = 0.0;
    for (const auto& z : ds.test_measurements) mean += z[j];
    mean /= double(ds.test_measurements.size());
    EXPECT_LT(std::fabs(mean), 3.0) << "channel " << j;
    EXPECT_GT(ds.channel_means[j], 5.0) << "baseline was removed";
  }
}

TEST(DatasetTest, CovariancesAreSpd) {
  auto ds = build_dataset(tiny_spec());
  EXPECT_NO_THROW(linalg::cholesky_factor(ds.model.r));
  EXPECT_NO_THROW(linalg::cholesky_factor(ds.model.q));
}

TEST(DatasetTest, RejectsInsufficientTraining) {
  auto spec = tiny_spec();
  spec.train_steps = 30;  // < 2 * 20 channels
  EXPECT_THROW(build_dataset(spec), std::invalid_argument);
}

TEST(DatasetTest, ReferenceFilterDecodesVelocityAboveChance) {
  // The trained KF must actually decode: correlation between the reference
  // filter's velocity estimates and the true velocities over the test
  // window should be clearly positive.
  auto spec = tiny_spec();
  spec.test_steps = 150;
  auto ds = build_dataset(spec);
  auto out = kalman::run_reference(ds.model, ds.test_measurements);

  for (std::size_t dim : {2u, 3u}) {  // vx, vy
    double mx = 0, my = 0;
    const std::size_t n = out.states.size();
    for (std::size_t t = 0; t < n; ++t) {
      mx += out.states[t][dim];
      my += ds.test_kinematics[t][dim];
    }
    mx /= double(n);
    my /= double(n);
    double cov = 0, vx = 0, vy = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const double a = out.states[t][dim] - mx;
      const double b = ds.test_kinematics[t][dim] - my;
      cov += a * b;
      vx += a * a;
      vy += b * b;
    }
    const double corr = cov / std::sqrt(vx * vy);
    EXPECT_GT(corr, 0.5) << "state dim " << dim;
  }
}

TEST(DatasetTest, HippocampusPresetBuilds) {
  // The smallest paper preset end-to-end (z=46).
  auto spec = hippocampus_spec();
  spec.train_steps = 400;  // shrink for test speed
  spec.test_steps = 20;
  auto ds = build_dataset(spec);
  EXPECT_EQ(ds.model.z_dim(), 46u);
  EXPECT_NO_THROW(linalg::cholesky_factor(ds.model.r));
}

}  // namespace
}  // namespace kalmmind::neural
