#include "neural/decode_quality.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace kalmmind::neural {
namespace {

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectAnticorrelation) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{4, 3, 2, 1};
  EXPECT_NEAR(pearson_correlation(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, ShiftAndScaleInvariance) {
  std::vector<double> a{0.3, -1.2, 2.5, 0.9, -0.4};
  std::vector<double> b;
  for (double v : a) b.push_back(7.0 * v - 3.0);
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, UncorrelatedNearZero) {
  std::vector<double> a, b;
  std::mt19937_64 rng(5);
  std::normal_distribution<double> white(0.0, 1.0);
  for (int i = 0; i < 5000; ++i) {
    a.push_back(white(rng));
    b.push_back(white(rng));
  }
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 0.05);
}

TEST(PearsonTest, ConstantSequenceGivesZero) {
  std::vector<double> a{1, 1, 1};
  std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson_correlation(a, b), 0.0);
}

TEST(PearsonTest, RejectsBadInput) {
  EXPECT_THROW(pearson_correlation({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(pearson_correlation({1.0, 2.0}, {1.0}),
               std::invalid_argument);
}

std::vector<KinematicState> ramp_kinematics(std::size_t n) {
  std::vector<KinematicState> kin;
  for (std::size_t t = 0; t < n; ++t) {
    KinematicState s(kStateDim);
    s[0] = double(t);
    s[1] = -double(t);
    s[2] = std::sin(0.1 * double(t));
    s[3] = std::cos(0.1 * double(t));
    kin.push_back(s);
  }
  return kin;
}

TEST(AssessDecodeTest, PerfectDecodeScoresOne) {
  auto truth = ramp_kinematics(50);
  std::vector<linalg::Vector<double>> decoded(truth.begin(), truth.end());
  auto q = assess_decode(decoded, truth);
  EXPECT_NEAR(q.position_correlation, 1.0, 1e-12);
  EXPECT_NEAR(q.velocity_correlation, 1.0, 1e-12);
  EXPECT_NEAR(q.velocity_rmse, 0.0, 1e-12);
}

TEST(AssessDecodeTest, RmseMeasuresVelocityError) {
  auto truth = ramp_kinematics(50);
  std::vector<linalg::Vector<double>> decoded(truth.begin(), truth.end());
  for (auto& s : decoded) {
    s[2] += 0.5;  // constant velocity bias
    s[3] -= 0.5;
  }
  auto q = assess_decode(decoded, truth);
  EXPECT_NEAR(q.velocity_rmse, 0.5, 1e-12);
  // Correlation is bias-invariant.
  EXPECT_NEAR(q.velocity_correlation, 1.0, 1e-12);
}

TEST(AssessDecodeTest, RejectsMismatchedLengths) {
  auto truth = ramp_kinematics(10);
  std::vector<linalg::Vector<double>> decoded(truth.begin(),
                                              truth.begin() + 5);
  EXPECT_THROW(assess_decode(decoded, truth), std::invalid_argument);
}

TEST(AssessDecodeTest, RejectsBadStateDimension) {
  auto truth = ramp_kinematics(5);
  std::vector<linalg::Vector<double>> decoded(5, linalg::Vector<double>(3));
  EXPECT_THROW(assess_decode(decoded, truth), std::invalid_argument);
}

}  // namespace
}  // namespace kalmmind::neural
