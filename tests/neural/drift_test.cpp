#include "neural/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "neural/kinematics.hpp"

namespace kalmmind::neural {
namespace {

EncodingConfig cfg() {
  EncodingConfig c;
  c.channels = 12;
  c.noise_std = 0.0;  // deterministic signal path for exact checks
  c.independent_noise_std = 0.0;
  return c;
}

std::vector<KinematicState> moving_kinematics(std::size_t steps) {
  std::vector<KinematicState> kin(steps, KinematicState(kStateDim));
  for (auto& s : kin) {
    s[2] = 4.0;  // constant vx
    s[3] = 1.0;  // constant vy
  }
  return kin;
}

TEST(DriftTest, ZeroDriftMatchesPlainEncoder) {
  linalg::Rng rng(1);
  auto enc = make_encoder(cfg(), rng);
  auto kin = moving_kinematics(10);
  DriftConfig none;
  none.rotation_per_step = 0.0;
  none.gain_decay_per_step = 1.0;
  linalg::Rng ra(2), rb(2);
  auto drifted = encode_with_drift(enc, none, kin, ra);
  auto plain = enc.encode(kin, rb);
  for (std::size_t n = 0; n < kin.size(); ++n)
    for (std::size_t i = 0; i < 12; ++i)
      EXPECT_DOUBLE_EQ(drifted[n][i], plain[n][i]) << n << "," << i;
}

TEST(DriftTest, FirstSampleIsUndrifted) {
  linalg::Rng rng(3);
  auto enc = make_encoder(cfg(), rng);
  auto kin = moving_kinematics(3);
  DriftConfig drift;
  drift.rotation_per_step = 0.2;
  linalg::Rng ra(4), rb(4);
  auto drifted = encode_with_drift(enc, drift, kin, ra);
  auto plain = enc.encode(kin, rb);
  for (std::size_t i = 0; i < 12; ++i)
    EXPECT_DOUBLE_EQ(drifted[0][i], plain[0][i]);
}

TEST(DriftTest, ResponsesDivergeOverTime) {
  linalg::Rng rng(5);
  auto enc = make_encoder(cfg(), rng);
  auto kin = moving_kinematics(100);
  DriftConfig drift;
  drift.rotation_per_step = 0.01;
  drift.gain_decay_per_step = 1.0;
  linalg::Rng ra(6), rb(6);
  auto drifted = encode_with_drift(enc, drift, kin, ra);
  auto plain = enc.encode(kin, rb);
  auto gap = [&](std::size_t n) {
    double g = 0;
    for (std::size_t i = 0; i < 12; ++i)
      g += std::fabs(drifted[n][i] - plain[n][i]);
    return g;
  };
  EXPECT_GT(gap(99), 10.0 * std::max(gap(1), 1e-12));
}

TEST(DriftTest, GainDecayShrinksModulation) {
  linalg::Rng rng(7);
  auto c = cfg();
  c.baseline_rate = 0.0;  // responses are pure modulation
  auto enc = make_encoder(c, rng);
  auto kin = moving_kinematics(200);
  DriftConfig drift;
  drift.rotation_per_step = 0.0;
  drift.gain_decay_per_step = 0.99;
  linalg::Rng ra(8);
  auto drifted = encode_with_drift(enc, drift, kin, ra);
  double early = 0, late = 0;
  for (std::size_t i = 0; i < 12; ++i) {
    early += std::fabs(drifted[1][i]);
    late += std::fabs(drifted[199][i]);
  }
  EXPECT_NEAR(late / early, std::pow(0.99, 198), 0.02);
}

TEST(DriftTest, RotationPreservesResponseEnergy) {
  // Pure rotation (gain 1) keeps each channel pair's modulation magnitude
  // for an isotropic stimulus sweep.
  linalg::Rng rng(9);
  auto c = cfg();
  c.baseline_rate = 0.0;
  auto enc = make_encoder(c, rng);
  // Stimulus: unit velocity rotating through 8 angles; total response
  // energy per channel is rotation invariant.
  std::vector<KinematicState> kin;
  for (int k = 0; k < 8; ++k) {
    KinematicState s(kStateDim);
    s[2] = std::cos(k * M_PI / 4);
    s[3] = std::sin(k * M_PI / 4);
    kin.push_back(s);
  }
  DriftConfig drift;
  drift.rotation_per_step = 0.0;
  drift.gain_decay_per_step = 1.0;
  linalg::Rng ra(10), rb(10);
  auto a = encode_with_drift(enc, drift, kin, ra);
  auto b = enc.encode(kin, rb);
  double ea = 0, eb = 0;
  for (std::size_t n = 0; n < kin.size(); ++n)
    for (std::size_t i = 0; i < 12; ++i) {
      ea += a[n][i] * a[n][i];
      eb += b[n][i] * b[n][i];
    }
  EXPECT_NEAR(ea, eb, 1e-9);
}

}  // namespace
}  // namespace kalmmind::neural
