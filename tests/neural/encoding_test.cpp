// Population encoding: dimensions, determinism, and — crucially — the
// spatial/temporal correlation structure the KalmMind seed policies rely
// on.
#include "neural/encoding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "neural/kinematics.hpp"

namespace kalmmind::neural {
namespace {

EncodingConfig test_config(std::size_t channels = 24) {
  EncodingConfig c;
  c.channels = channels;
  return c;
}

std::vector<KinematicState> still_kinematics(std::size_t steps) {
  // All-zero kinematics isolate the noise process.
  return std::vector<KinematicState>(steps, KinematicState(kStateDim));
}

TEST(EncodingTest, EmitsOneRatePerChannel) {
  linalg::Rng rng(1);
  auto enc = make_encoder(test_config(17), rng);
  auto obs = enc.encode(still_kinematics(5), rng);
  ASSERT_EQ(obs.size(), 5u);
  for (const auto& z : obs) EXPECT_EQ(z.size(), 17u);
}

TEST(EncodingTest, DeterministicGivenSeed) {
  auto cfg = test_config();
  linalg::Rng a(3), b(3);
  auto ea = make_encoder(cfg, a);
  auto eb = make_encoder(cfg, b);
  auto kin = still_kinematics(10);
  auto oa = ea.encode(kin, a);
  auto ob = eb.encode(kin, b);
  for (std::size_t n = 0; n < 10; ++n) EXPECT_TRUE(oa[n] == ob[n]) << n;
}

TEST(EncodingTest, BaselineRateAppearsInMeanActivity) {
  auto cfg = test_config();
  cfg.baseline_rate = 25.0;
  linalg::Rng rng(5);
  auto enc = make_encoder(cfg, rng);
  auto obs = enc.encode(still_kinematics(4000), rng);
  double mean = 0.0;
  for (const auto& z : obs) mean += z[0];
  mean /= double(obs.size());
  EXPECT_NEAR(mean, 25.0, 1.0);
}

TEST(EncodingTest, VelocityTuningModulatesRates) {
  auto cfg = test_config();
  linalg::Rng rng(7);
  auto enc = make_encoder(cfg, rng);
  KinematicState moving(kStateDim);
  moving[2] = 5.0;  // vx
  auto obs_still = enc.encode(still_kinematics(1), rng);
  auto obs_move = enc.encode({moving}, rng);
  // At least one channel must respond strongly to movement.
  double max_delta = 0.0;
  for (std::size_t i = 0; i < cfg.channels; ++i)
    max_delta = std::max(max_delta,
                         std::fabs(obs_move[0][i] - obs_still[0][i]));
  EXPECT_GT(max_delta, 1.0);
}

TEST(EncodingTest, PositionTuningIgnoresAcceleration) {
  auto cfg = test_config();
  cfg.tuning = TuningKind::kPosition;
  linalg::Rng rng(9);
  auto enc = make_encoder(cfg, rng);
  for (std::size_t i = 0; i < cfg.channels; ++i) {
    EXPECT_EQ(enc.tuning_matrix(i, 4), 0.0);
    EXPECT_EQ(enc.tuning_matrix(i, 5), 0.0);
  }
}

TEST(EncodingTest, NeighbouringChannelsAreMoreCorrelatedThanDistant) {
  auto cfg = test_config(32);
  cfg.temporal_corr = 0.0;  // isolate spatial structure
  cfg.independent_noise_std = 1.0;
  cfg.noise_std = 2.0;
  cfg.spatial_corr_length = 4.0;
  linalg::Rng rng(11);
  auto enc = make_encoder(cfg, rng);
  auto obs = enc.encode(still_kinematics(6000), rng);

  auto corr = [&](std::size_t a, std::size_t b) {
    double ma = 0, mb = 0;
    for (const auto& z : obs) {
      ma += z[a];
      mb += z[b];
    }
    ma /= double(obs.size());
    mb /= double(obs.size());
    double cov = 0, va = 0, vb = 0;
    for (const auto& z : obs) {
      cov += (z[a] - ma) * (z[b] - mb);
      va += (z[a] - ma) * (z[a] - ma);
      vb += (z[b] - mb) * (z[b] - mb);
    }
    return cov / std::sqrt(va * vb);
  };
  const double near = corr(10, 11);
  const double far = corr(10, 30);
  EXPECT_GT(near, far + 0.1);
  EXPECT_GT(near, 0.3);
}

TEST(EncodingTest, TemporalCorrelationMatchesAr1Coefficient) {
  auto cfg = test_config(4);
  cfg.temporal_corr = 0.8;
  cfg.independent_noise_std = 0.0;
  cfg.noise_std = 2.0;
  cfg.spatial_corr_length = 0.0;  // diagonal spatial covariance
  linalg::Rng rng(13);
  auto enc = make_encoder(cfg, rng);
  auto obs = enc.encode(still_kinematics(8000), rng);
  // Lag-1 autocorrelation of channel 0.
  double mean = 0.0;
  for (const auto& z : obs) mean += z[0];
  mean /= double(obs.size());
  double num = 0, den = 0;
  for (std::size_t n = 1; n < obs.size(); ++n) {
    num += (obs[n][0] - mean) * (obs[n - 1][0] - mean);
    den += (obs[n][0] - mean) * (obs[n][0] - mean);
  }
  EXPECT_NEAR(num / den, 0.8, 0.05);
}

TEST(EncodingTest, IndependentChannelsWhenCorrelationDisabled) {
  auto cfg = test_config(16);
  cfg.spatial_corr_length = 0.0;
  cfg.temporal_corr = 0.0;
  cfg.independent_noise_std = 0.0;
  linalg::Rng rng(15);
  auto enc = make_encoder(cfg, rng);
  auto obs = enc.encode(still_kinematics(6000), rng);
  double mean0 = 0, mean1 = 0;
  for (const auto& z : obs) {
    mean0 += z[0];
    mean1 += z[8];
  }
  mean0 /= double(obs.size());
  mean1 /= double(obs.size());
  double cov = 0, v0 = 0, v1 = 0;
  for (const auto& z : obs) {
    cov += (z[0] - mean0) * (z[8] - mean1);
    v0 += (z[0] - mean0) * (z[0] - mean0);
    v1 += (z[8] - mean1) * (z[8] - mean1);
  }
  EXPECT_NEAR(cov / std::sqrt(v0 * v1), 0.0, 0.06);
}

TEST(EncodingTest, RejectsZeroChannels) {
  linalg::Rng rng(17);
  EXPECT_THROW(make_encoder(test_config(0), rng), std::invalid_argument);
}

TEST(EncodingTest, RejectsBadKinematicDimension) {
  linalg::Rng rng(19);
  auto enc = make_encoder(test_config(), rng);
  std::vector<KinematicState> bad{KinematicState(3)};
  EXPECT_THROW(enc.encode(bad, rng), std::invalid_argument);
}

TEST(EncodingTest, StackObservationsLayout) {
  linalg::Rng rng(21);
  auto enc = make_encoder(test_config(6), rng);
  auto obs = enc.encode(still_kinematics(7), rng);
  auto z = stack_observations(obs);
  ASSERT_EQ(z.rows(), 7u);
  ASSERT_EQ(z.cols(), 6u);
  EXPECT_DOUBLE_EQ(z(3, 2), obs[3][2]);
}

}  // namespace
}  // namespace kalmmind::neural
