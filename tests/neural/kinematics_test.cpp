#include "neural/kinematics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace kalmmind::neural {
namespace {

KinematicsConfig default_config() { return {}; }

TEST(KinematicsTest, ProducesRequestedLength) {
  linalg::Rng rng(1);
  auto kin = generate_kinematics(default_config(), 250, rng);
  ASSERT_EQ(kin.size(), 250u);
  for (const auto& s : kin) EXPECT_EQ(s.size(), kStateDim);
}

TEST(KinematicsTest, DeterministicGivenSeed) {
  auto cfg = default_config();
  linalg::Rng a(42), b(42);
  auto ka = generate_kinematics(cfg, 100, a);
  auto kb = generate_kinematics(cfg, 100, b);
  for (std::size_t n = 0; n < 100; ++n) EXPECT_TRUE(ka[n] == kb[n]) << n;
}

TEST(KinematicsTest, DifferentSeedsDiffer) {
  auto cfg = default_config();
  linalg::Rng a(1), b(2);
  auto ka = generate_kinematics(cfg, 50, a);
  auto kb = generate_kinematics(cfg, 50, b);
  bool any_diff = false;
  for (std::size_t n = 0; n < 50 && !any_diff; ++n)
    any_diff = !(ka[n] == kb[n]);
  EXPECT_TRUE(any_diff);
}

TEST(KinematicsTest, PositionIntegratesVelocity) {
  auto cfg = default_config();
  linalg::Rng rng(7);
  auto kin = generate_kinematics(cfg, 100, rng);
  for (std::size_t n = 1; n < kin.size(); ++n) {
    // px_n = px_{n-1} + vx_n * dt (velocity updated before position).
    EXPECT_NEAR(kin[n][0], kin[n - 1][0] + kin[n][2] * cfg.dt, 1e-9) << n;
    EXPECT_NEAR(kin[n][1], kin[n - 1][1] + kin[n][3] * cfg.dt, 1e-9) << n;
  }
}

TEST(KinematicsTest, VelocityIntegratesAcceleration) {
  auto cfg = default_config();
  linalg::Rng rng(8);
  auto kin = generate_kinematics(cfg, 100, rng);
  for (std::size_t n = 1; n < kin.size(); ++n) {
    EXPECT_NEAR(kin[n][2], kin[n - 1][2] + kin[n][4] * cfg.dt, 1e-9) << n;
  }
}

TEST(KinematicsTest, TrajectoriesStayBoundedNearWorkspace) {
  auto cfg = default_config();
  linalg::Rng rng(9);
  auto kin = generate_kinematics(cfg, 3000, rng);
  for (const auto& s : kin) {
    EXPECT_LT(std::fabs(s[0]), 5.0 * cfg.workspace);
    EXPECT_LT(std::fabs(s[1]), 5.0 * cfg.workspace);
  }
}

TEST(KinematicsTest, MovementActuallyHappens) {
  auto cfg = default_config();
  linalg::Rng rng(10);
  auto kin = generate_kinematics(cfg, 500, rng);
  double max_speed = 0.0;
  for (const auto& s : kin)
    max_speed = std::max(max_speed, std::hypot(s[2], s[3]));
  EXPECT_GT(max_speed, 1.0) << "reaches must produce real velocities";
}

TEST(KinematicsTest, RejectsBadConfig) {
  linalg::Rng rng(1);
  auto cfg = default_config();
  cfg.dt = 0.0;
  EXPECT_THROW(generate_kinematics(cfg, 10, rng), std::invalid_argument);
  cfg = default_config();
  cfg.hold_steps = 0;
  EXPECT_THROW(generate_kinematics(cfg, 10, rng), std::invalid_argument);
}

TEST(KinematicsTest, StackStatesLayout) {
  linalg::Rng rng(11);
  auto kin = generate_kinematics(default_config(), 20, rng);
  auto x = stack_states(kin);
  ASSERT_EQ(x.rows(), 20u);
  ASSERT_EQ(x.cols(), kStateDim);
  EXPECT_DOUBLE_EQ(x(5, 2), kin[5][2]);
}

TEST(KinematicsTest, StackStatesRejectsRaggedInput) {
  std::vector<KinematicState> bad{KinematicState(kStateDim),
                                  KinematicState(3)};
  EXPECT_THROW(stack_states(bad), std::invalid_argument);
}

}  // namespace
}  // namespace kalmmind::neural
