#include "neural/spikes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kalman/reference.hpp"
#include "neural/dataset.hpp"
#include "neural/training.hpp"

namespace kalmmind::neural {
namespace {

EncodingConfig spike_cfg(std::size_t channels = 16) {
  EncodingConfig c;
  c.channels = channels;
  c.baseline_rate = 20.0;
  c.modulation_depth = 2.0;
  return c;
}

TEST(SpikesTest, CountsAreNonNegativeIntegers) {
  linalg::Rng rng(1);
  auto enc = make_encoder(spike_cfg(), rng);
  auto kin = generate_kinematics(KinematicsConfig{}, 200, rng);
  auto counts = encode_spike_counts(enc, SpikeConfig{}, kin, rng);
  ASSERT_EQ(counts.size(), 200u);
  for (const auto& c : counts)
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_GE(c[i], 0.0);
      EXPECT_DOUBLE_EQ(c[i], std::round(c[i]));
    }
}

TEST(SpikesTest, MeanCountMatchesRateTimesBin) {
  // Stationary kinematics: mean count per bin = baseline * bin.
  linalg::Rng rng(2);
  auto enc = make_encoder(spike_cfg(8), rng);
  std::vector<KinematicState> still(6000, KinematicState(kStateDim));
  SpikeConfig cfg;
  auto counts = encode_spike_counts(enc, cfg, still, rng);
  double mean = 0.0;
  for (const auto& c : counts) mean += c[0];
  mean /= double(counts.size());
  EXPECT_NEAR(mean, 20.0 * cfg.bin_seconds, 0.1);
}

TEST(SpikesTest, VarianceIsPoissonLike) {
  // For Poisson counts, variance ~= mean (Fano factor ~ 1).
  linalg::Rng rng(3);
  auto enc = make_encoder(spike_cfg(4), rng);
  std::vector<KinematicState> still(8000, KinematicState(kStateDim));
  auto counts = encode_spike_counts(enc, SpikeConfig{}, still, rng);
  double mean = 0.0, var = 0.0;
  for (const auto& c : counts) mean += c[0];
  mean /= double(counts.size());
  for (const auto& c : counts) var += (c[0] - mean) * (c[0] - mean);
  var /= double(counts.size() - 1);
  EXPECT_NEAR(var / mean, 1.0, 0.1);
}

TEST(SpikesTest, RatesAreClampedAtZero) {
  // Strong negative modulation cannot produce negative rates/counts.
  linalg::Rng rng(4);
  auto cfg = spike_cfg(8);
  cfg.baseline_rate = 0.5;
  cfg.modulation_depth = 10.0;
  auto enc = make_encoder(cfg, rng);
  KinematicState fast(kStateDim);
  fast[2] = -50.0;
  fast[3] = -50.0;
  auto counts =
      encode_spike_counts(enc, SpikeConfig{},
                          std::vector<KinematicState>(100, fast), rng);
  for (const auto& c : counts)
    for (std::size_t i = 0; i < c.size(); ++i) EXPECT_GE(c[i], 0.0);
}

TEST(SpikesTest, RejectsBadConfig) {
  linalg::Rng rng(5);
  auto enc = make_encoder(spike_cfg(), rng);
  SpikeConfig bad;
  bad.bin_seconds = 0.0;
  EXPECT_THROW(encode_spike_counts(enc, bad, {KinematicState(kStateDim)}, rng),
               std::invalid_argument);
}

TEST(SpikesTest, KfTrainedOnSpikesStillDecodes) {
  // End to end: train the (Gaussian) KF on Poisson counts and check the
  // mismatched decoder still extracts velocity — the real-world situation
  // of every KF-based spike decoder.
  linalg::Rng rng(6);
  auto cfg = spike_cfg(32);
  cfg.modulation_depth = 3.0;
  auto enc = make_encoder(cfg, rng);
  auto kin = generate_kinematics(KinematicsConfig{}, 1600, rng);
  auto counts = encode_spike_counts(enc, SpikeConfig{}, kin, rng);

  // Center counts (as build_dataset does for rates).
  const std::size_t train = 1500;
  Vector<double> means(cfg.channels);
  for (std::size_t n = 0; n < train; ++n)
    for (std::size_t j = 0; j < cfg.channels; ++j) means[j] += counts[n][j];
  for (std::size_t j = 0; j < cfg.channels; ++j) means[j] /= double(train);
  for (auto& c : counts)
    for (std::size_t j = 0; j < cfg.channels; ++j) c[j] -= means[j];

  std::vector<KinematicState> train_kin(kin.begin(), kin.begin() + train);
  std::vector<Vector<double>> train_counts(counts.begin(),
                                           counts.begin() + train);
  auto model = train_kalman_model(stack_states(train_kin),
                                  stack_observations(train_counts));
  std::vector<Vector<double>> test_counts(counts.begin() + train,
                                          counts.end());
  auto out = kalman::run_reference(model, test_counts);

  // Velocity correlation against ground truth over the test window.
  double corr = 0.0;
  for (std::size_t dim : {2u, 3u}) {
    double mx = 0, my = 0;
    const std::size_t n = out.states.size();
    for (std::size_t t = 0; t < n; ++t) {
      mx += out.states[t][dim];
      my += kin[train + t][dim];
    }
    mx /= double(n);
    my /= double(n);
    double cov = 0, vx = 0, vy = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const double a = out.states[t][dim] - mx;
      const double b = kin[train + t][dim] - my;
      cov += a * b;
      vx += a * a;
      vy += b * b;
    }
    corr += cov / std::sqrt(vx * vy);
  }
  EXPECT_GT(corr / 2.0, 0.4);
}

}  // namespace
}  // namespace kalmmind::neural
