// Least-squares model training (Wu et al.): recovery of known linear
// systems and well-posedness of the fitted covariances.
#include "neural/training.hpp"

#include <gtest/gtest.h>

#include <random>

#include "../test_util.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/random.hpp"

namespace kalmmind::neural {
namespace {

using kalmmind::testing::expect_matrix_near;
using linalg::Matrix;
using linalg::Rng;

// Generate (X, Z) from a known linear-Gaussian system.
struct SyntheticSystem {
  Matrix<double> f_true;
  Matrix<double> h_true;
  Matrix<double> x;  // n x p kinematics
  Matrix<double> z;  // n x m observations
};

SyntheticSystem make_system(std::size_t n, std::size_t p, std::size_t m,
                            double q_std, double r_std, std::uint64_t seed) {
  Rng rng(seed);
  std::normal_distribution<double> white(0.0, 1.0);
  SyntheticSystem sys;
  // A stable random F: scale a random matrix to spectral radius < 1.
  sys.f_true = linalg::random_matrix<double>(p, p, rng, -0.3, 0.3);
  for (std::size_t i = 0; i < p; ++i) sys.f_true(i, i) += 0.5;
  sys.h_true = linalg::random_matrix<double>(m, p, rng, -1.0, 1.0);

  sys.x.resize(n, p);
  sys.z.resize(n, m);
  std::vector<double> state(p, 1.0);
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<double> next(p, 0.0);
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j)
        next[i] += sys.f_true(i, j) * state[j];
      next[i] += q_std * white(rng);
    }
    state = next;
    for (std::size_t i = 0; i < p; ++i) sys.x(t, i) = state[i];
    for (std::size_t i = 0; i < m; ++i) {
      double acc = r_std * white(rng);
      for (std::size_t j = 0; j < p; ++j)
        acc += sys.h_true(i, j) * state[j];
      sys.z(t, i) = acc;
    }
  }
  return sys;
}

TEST(TrainingTest, RecoversObservationModel) {
  auto sys = make_system(4000, 3, 8, 0.3, 0.05, 1);
  auto model = train_kalman_model(sys.x, sys.z);
  expect_matrix_near(model.h, sys.h_true, 0.05, "H recovery");
}

TEST(TrainingTest, RecoversStateTransition) {
  auto sys = make_system(6000, 3, 8, 0.3, 0.05, 2);
  auto model = train_kalman_model(sys.x, sys.z);
  expect_matrix_near(model.f, sys.f_true, 0.05, "F recovery");
}

TEST(TrainingTest, NoiseCovariancesMatchGeneratingNoise) {
  const double q_std = 0.4, r_std = 0.7;
  auto sys = make_system(8000, 2, 5, q_std, r_std, 3);
  auto model = train_kalman_model(sys.x, sys.z);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(model.q(i, i), q_std * q_std, 0.05);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(model.r(i, i), r_std * r_std, 0.1);
}

TEST(TrainingTest, CovariancesAreSpd) {
  auto sys = make_system(2000, 3, 10, 0.3, 0.5, 4);
  auto model = train_kalman_model(sys.x, sys.z);
  EXPECT_NO_THROW(linalg::cholesky_factor(model.q));
  EXPECT_NO_THROW(linalg::cholesky_factor(model.r));
}

TEST(TrainingTest, InitialStateIsLastTrainingSample) {
  auto sys = make_system(500, 3, 6, 0.3, 0.5, 5);
  auto model = train_kalman_model(sys.x, sys.z);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_DOUBLE_EQ(model.x0[j], sys.x(499, j));
}

TEST(TrainingTest, ModelValidates) {
  auto sys = make_system(600, 2, 7, 0.2, 0.4, 6);
  auto model = train_kalman_model(sys.x, sys.z);
  EXPECT_NO_THROW(model.validate());
  EXPECT_EQ(model.x_dim(), 2u);
  EXPECT_EQ(model.z_dim(), 7u);
}

TEST(TrainingTest, RidgeOptionsAreApplied) {
  auto sys = make_system(800, 2, 4, 0.2, 0.4, 7);
  TrainingOptions big_ridge;
  big_ridge.r_ridge = 100.0;
  auto base = train_kalman_model(sys.x, sys.z);
  auto ridged = train_kalman_model(sys.x, sys.z, big_ridge);
  EXPECT_NEAR(ridged.r(0, 0) - base.r(0, 0), 100.0 - TrainingOptions{}.r_ridge,
              1e-9);
}

TEST(TrainingTest, RejectsRowCountMismatch) {
  Matrix<double> x(10, 2);
  Matrix<double> z(9, 3);
  EXPECT_THROW(train_kalman_model(x, z), std::invalid_argument);
}

TEST(TrainingTest, RejectsTooFewSamples) {
  // Fewer than 2*z_dim rows cannot produce a usable R estimate.
  Matrix<double> x(10, 2);
  Matrix<double> z(10, 8);
  EXPECT_THROW(train_kalman_model(x, z), std::invalid_argument);
}

}  // namespace
}  // namespace kalmmind::neural
