// Batched serving (docs/serving.md): same-config sessions fused into
// BatchGroups over a shared gain schedule.  The contract under test is the
// tentpole acceptance bar — a batched fleet decodes bit-identically to the
// solo path — plus every fall-out edge: mixed configs, health-enabled
// sessions, opt-outs, and sliding-window misses.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "linalg/simd/simd.hpp"
#include "serve/serve.hpp"
#include "../kalman/kalman_test_util.hpp"

namespace kalmmind::serve {
namespace {

using linalg::Vector;

SessionConfig batched_config(const kalman::KalmanModel<double>& model) {
  SessionConfig cfg;
  cfg.filter.model = model;
  cfg.filter.strategy.kind = kalman::StrategyKind::kInterleaved;
  cfg.filter.strategy.calc_freq = 3;
  cfg.filter.strategy.approx = 2;
  cfg.filter.strategy.policy = kalman::SeedPolicy::kPreviousIteration;
  cfg.queue_capacity = 1024;
  return cfg;
}

std::vector<Vector<double>> sequential_trajectory(
    const SessionConfig& cfg, const std::vector<Vector<double>>& zs) {
  kalman::KalmanFilter<double> filter = cfg.filter.make_filter();
  std::vector<Vector<double>> states;
  for (const auto& z : zs) states.push_back(filter.step(z));
  return states;
}

void expect_bit_identical(const std::vector<Vector<double>>& a,
                          const std::vector<Vector<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) {
    ASSERT_EQ(a[n].size(), b[n].size());
    for (std::size_t d = 0; d < a[n].size(); ++d) {
      ASSERT_EQ(a[n][d], b[n][d]) << "step " << n << " dim " << d;
    }
  }
}

const SessionStatsSnapshot& snapshot_for(const ServerStats& stats,
                                         SessionId id) {
  for (const auto& s : stats.per_session) {
    if (s.id == id) return s;
  }
  static const SessionStatsSnapshot missing;
  ADD_FAILURE() << "no snapshot for session " << id;
  return missing;
}

TEST(ServeBatchTest, BatchedFleetIsBitIdenticalToSolo) {
  const auto model = testing::small_model(6);
  const SessionConfig cfg = batched_config(model);

  // The acceptance bar: >= 32 same-config sessions through the batched
  // path, each with its own measurement stream, all bit-identical to the
  // plain sequential filter.
  constexpr std::size_t kSessions = 33;
  constexpr std::size_t kSteps = 40;
  std::vector<std::vector<Vector<double>>> streams;
  for (std::size_t s = 0; s < kSessions; ++s) {
    streams.push_back(testing::simulate_measurements(model, kSteps, 500 + s));
  }

  ServerOptions options;
  options.workers = 4;
  options.max_batch = 4;
  DecodeServer server(options);
  std::vector<SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    ids.push_back(server.open_session(cfg));
    ASSERT_NE(ids.back(), DecodeServer::kInvalidSession);
  }

  for (std::size_t n = 0; n < kSteps; ++n) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      EXPECT_EQ(server.submit(ids[s], streams[s][n]), PushResult::kAccepted);
    }
  }
  server.drain();

  for (std::size_t s = 0; s < kSessions; ++s) {
    SCOPED_TRACE(s);
    expect_bit_identical(server.trajectory(ids[s]),
                         sequential_trajectory(cfg, streams[s]));
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batch_groups, 1u);           // one config, one group
  EXPECT_EQ(stats.batched_sessions, kSessions);
  EXPECT_EQ(stats.total_batched_steps, kSessions * kSteps);
  EXPECT_EQ(stats.total_steps, kSessions * kSteps);
  EXPECT_EQ(stats.gain_cache_misses, 1u);      // one schedule built
  EXPECT_EQ(stats.gain_cache_hits, kSessions - 1);
  for (const auto id : ids) {
    const auto& snap = snapshot_for(stats, id);
    EXPECT_TRUE(snap.batched);
    EXPECT_EQ(snap.batched_steps, kSteps);
  }
}

// The batched-vs-solo bit-identity bar again, once per SIMD tier the host
// can run (docs/performance.md): the fused SoA panel passes must reproduce
// the solo filter exactly under every dispatched kernel table, not just
// whichever tier the probe picked.  The tier is process-global, so the
// worker threads and the sequential reference run the same kernels.
TEST(ServeBatchTest, BatchedFleetBitIdenticalToSoloOnEveryTier) {
  const auto model = testing::small_model(6);
  const SessionConfig cfg = batched_config(model);
  constexpr std::size_t kSessions = 9;
  constexpr std::size_t kSteps = 25;

  const linalg::simd::Tier entry_tier = linalg::simd::active_tier();
  for (const linalg::simd::Tier tier : linalg::simd::available_tiers()) {
    SCOPED_TRACE(linalg::simd::tier_name(tier));
    ASSERT_TRUE(linalg::simd::set_dispatch_tier(tier));

    std::vector<std::vector<Vector<double>>> streams;
    for (std::size_t s = 0; s < kSessions; ++s) {
      streams.push_back(
          testing::simulate_measurements(model, kSteps, 900 + s));
    }
    ServerOptions options;
    options.workers = 2;
    options.max_batch = 4;
    DecodeServer server(options);
    std::vector<SessionId> ids;
    for (std::size_t s = 0; s < kSessions; ++s) {
      ids.push_back(server.open_session(cfg));
    }
    for (std::size_t n = 0; n < kSteps; ++n) {
      for (std::size_t s = 0; s < kSessions; ++s) {
        ASSERT_EQ(server.submit(ids[s], streams[s][n]),
                  PushResult::kAccepted);
      }
    }
    server.drain();
    for (std::size_t s = 0; s < kSessions; ++s) {
      SCOPED_TRACE(s);
      expect_bit_identical(server.trajectory(ids[s]),
                           sequential_trajectory(cfg, streams[s]));
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.total_batched_steps, kSessions * kSteps);
  }
  linalg::simd::set_dispatch_tier(entry_tier);
}

TEST(ServeBatchTest, MixedConfigsFormSeparateGroups) {
  const auto model = testing::small_model(4);
  const SessionConfig a = batched_config(model);
  SessionConfig b = a;
  b.filter.strategy.calc_freq = 5;  // different datapath, no sharing

  const auto zs = testing::simulate_measurements(model, 25);
  DecodeServer server({/*workers=*/2, /*max_batch=*/4});
  const SessionId ida1 = server.open_session(a);
  const SessionId ida2 = server.open_session(a);
  const SessionId idb = server.open_session(b);
  for (const auto& z : zs) {
    server.submit(ida1, z);
    server.submit(ida2, z);
    server.submit(idb, z);
  }
  server.drain();

  expect_bit_identical(server.trajectory(ida1), sequential_trajectory(a, zs));
  expect_bit_identical(server.trajectory(idb), sequential_trajectory(b, zs));

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batch_groups, 2u);
  EXPECT_EQ(stats.batched_sessions, 3u);
  EXPECT_EQ(stats.gain_cache_misses, 2u);  // one schedule per config
}

TEST(ServeBatchTest, HealthEnabledSessionsStaySolo) {
  // Health monitoring makes the gain trajectory measurement-dependent
  // (gated channels change K's effect), so such sessions must never join
  // a group — they decode solo, still correctly.
  const auto model = testing::small_model(4);
  SessionConfig cfg = batched_config(model);
  cfg.filter.options.health.enabled = true;
  cfg.filter.options.health.innovation_gate_sigma = 8.0;

  const auto zs = testing::simulate_measurements(model, 20);
  DecodeServer server({/*workers=*/2, /*max_batch=*/4});
  const SessionId id = server.open_session(cfg);
  ASSERT_NE(id, DecodeServer::kInvalidSession);
  for (const auto& z : zs) server.submit(id, z);
  server.drain();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batch_groups, 0u);
  EXPECT_EQ(stats.batched_sessions, 0u);
  EXPECT_EQ(stats.total_batched_steps, 0u);
  const auto& snap = snapshot_for(stats, id);
  EXPECT_FALSE(snap.batched);
  EXPECT_EQ(snap.steps, zs.size());
}

TEST(ServeBatchTest, OptOutsStaySolo) {
  const auto model = testing::small_model(4);
  const auto zs = testing::simulate_measurements(model, 15);

  {
    // Server-wide opt-out.
    ServerOptions options;
    options.workers = 2;
    options.batching = false;
    DecodeServer server(options);
    const SessionId id = server.open_session(batched_config(model));
    for (const auto& z : zs) server.submit(id, z);
    server.drain();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.batched_sessions, 0u);
    EXPECT_EQ(stats.total_batched_steps, 0u);
    EXPECT_EQ(stats.gain_cache_misses, 0u);  // cache never consulted
    expect_bit_identical(server.trajectory(id),
                         sequential_trajectory(batched_config(model), zs));
  }
  {
    // Per-session opt-out.
    SessionConfig cfg = batched_config(model);
    cfg.allow_batching = false;
    DecodeServer server({/*workers=*/2});
    const SessionId id = server.open_session(cfg);
    for (const auto& z : zs) server.submit(id, z);
    server.drain();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.batched_sessions, 0u);
    EXPECT_FALSE(snapshot_for(stats, id).batched);
    expect_bit_identical(server.trajectory(id),
                         sequential_trajectory(cfg, zs));
  }
}

TEST(ServeBatchTest, WindowMissEjectsToSoloAndStaysCorrect) {
  // A member whose iteration falls behind the schedule's sliding window
  // cannot be served batched any more: it falls out to the solo path and
  // finishes its stream there, still bit-identical.
  const auto model = testing::small_model(4);
  const SessionConfig cfg = batched_config(model);
  const auto zs = testing::simulate_measurements(model, 30);

  ServerOptions options;
  options.workers = 2;
  options.max_batch = 4;
  options.gain_window = 4;  // tiny: easy to fall behind
  DecodeServer server(options);
  const SessionId a = server.open_session(cfg);
  const SessionId b = server.open_session(cfg);  // joins at base 0

  // A decodes the full stream, pushing the window far past iteration 0.
  for (const auto& z : zs) server.submit(a, z);
  server.drain();
  {
    const ServerStats stats = server.stats();
    EXPECT_TRUE(snapshot_for(stats, a).batched);
    EXPECT_TRUE(snapshot_for(stats, b).batched);  // joined, not yet stepped
  }

  // B's first bin needs entry 0, which has slid out: eject to solo.
  for (const auto& z : zs) server.submit(b, z);
  server.drain();

  const ServerStats stats = server.stats();
  EXPECT_FALSE(snapshot_for(stats, b).batched);
  EXPECT_EQ(snapshot_for(stats, b).steps, zs.size());
  expect_bit_identical(server.trajectory(b), sequential_trajectory(cfg, zs));
  // A was never ejected.
  EXPECT_TRUE(snapshot_for(stats, a).batched);
  expect_bit_identical(server.trajectory(a), sequential_trajectory(cfg, zs));
}

TEST(ServeBatchTest, LateJoinAfterWindowSlideStartsSolo) {
  // A session opened after the group's schedule has slid past iteration 0
  // can never replay the early entries — admission keeps it solo from the
  // start rather than ejecting on its first bin.
  const auto model = testing::small_model(4);
  const SessionConfig cfg = batched_config(model);
  const auto zs = testing::simulate_measurements(model, 30);

  ServerOptions options;
  options.workers = 2;
  options.gain_window = 4;
  DecodeServer server(options);
  const SessionId a = server.open_session(cfg);
  for (const auto& z : zs) server.submit(a, z);
  server.drain();

  const SessionId late = server.open_session(cfg);
  for (const auto& z : zs) server.submit(late, z);
  server.drain();

  const ServerStats stats = server.stats();
  EXPECT_FALSE(snapshot_for(stats, late).batched);
  EXPECT_EQ(snapshot_for(stats, late).batched_steps, 0u);
  expect_bit_identical(server.trajectory(late),
                       sequential_trajectory(cfg, zs));
}

TEST(ServeBatchTest, ManualModePumpsGroupsThroughPoll) {
  // kManual: no pool, poll() drives group passes — the mode unit tests
  // and single-threaded embeddings rely on.
  const auto model = testing::small_model(4);
  const SessionConfig cfg = batched_config(model);
  const auto zs = testing::simulate_measurements(model, 12);

  ServerOptions options;
  options.workers = ServerOptions::kManual;
  options.max_batch = 4;
  DecodeServer server(options);
  const SessionId a = server.open_session(cfg);
  const SessionId b = server.open_session(cfg);
  for (const auto& z : zs) {
    server.submit(a, z);
    server.submit(b, z);
  }

  std::size_t decoded = 0;
  while (std::size_t n = server.poll()) decoded += n;
  EXPECT_EQ(decoded, 2 * zs.size());

  expect_bit_identical(server.trajectory(a), sequential_trajectory(cfg, zs));
  expect_bit_identical(server.trajectory(b), sequential_trajectory(cfg, zs));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.total_batched_steps, 2 * zs.size());
}

}  // namespace
}  // namespace kalmmind::serve
