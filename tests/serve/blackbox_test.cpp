// Flight-recorder integration at the serve layer (docs/observability.md):
// the PR-acceptance chaos scenario — a seeded measurement-fault storm that
// quarantines a session must leave a JSONL postmortem whose event sequence
// (injected fault -> health faults -> ladder rungs -> quarantine) matches
// the kalmmind.kf.recoveries_total.* counter deltas — plus the SLO rollup
// (per-session latency percentiles, server deadline attainment).  Suite
// names start with "Serve" on purpose: scripts/tier1.sh re-runs
// ^Serve|^Telemetry under TSan.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kalman/health.hpp"
#include "serve/serve.hpp"
#include "telemetry/telemetry.hpp"
#include "../kalman/kalman_test_util.hpp"
#if defined(KALMMIND_FAULTS)
#include "testing/fault_injection.hpp"
#endif

namespace kalmmind::serve {
namespace {

namespace fs = std::filesystem;
using kalman::RecoveryAction;
using linalg::Vector;

void drain_manual(DecodeServer& server) {
  while (server.poll() > 0) {
  }
}

// Fresh global telemetry state; tests run one-per-process under ctest.
void reset_telemetry(const std::string& dump_dir) {
  telemetry::MetricsRegistry::global().reset_values();
  auto& blackbox = telemetry::FlightRecorder::global();
  blackbox.clear();
  blackbox.set_enabled(true);
  blackbox.set_capacity(telemetry::FlightRecorder::kDefaultCapacity);
  blackbox.set_dump_dir(dump_dir);
}

SessionConfig blackbox_config(const kalman::KalmanModel<double>& model) {
  SessionConfig cfg;
  cfg.filter.model = model;
  cfg.filter.strategy.kind = kalman::StrategyKind::kInterleaved;
  cfg.filter.strategy.calc_freq = 3;
  cfg.filter.strategy.approx = 2;
  cfg.filter.strategy.policy = kalman::SeedPolicy::kPreviousIteration;
  cfg.filter.options.health.enabled = true;
  cfg.queue_capacity = 1024;
  cfg.self_healing.enabled = true;
  cfg.self_healing.max_restarts = 3;
  cfg.self_healing.backoff_initial_bins = 8;  // outlives the remaining bins
  cfg.self_healing.backoff_max_bins = 8;
  return cfg;
}

#if defined(KALMMIND_FAULTS)

TEST(ServeBlackboxTest, QuarantinePostmortemMatchesRecoveryCounterDeltas) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF: recorder compiles to no-ops";
  }
  const std::string dump_dir = ::testing::TempDir();
  reset_telemetry(dump_dir);

  std::uint64_t seed = 42;
  if (const char* env = std::getenv("KALMMIND_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
    if (seed == 0) seed = 42;
  }
  SCOPED_TRACE("KALMMIND_CHAOS_SEED=" + std::to_string(seed));

  const auto model = testing::small_model(6);
  const SessionConfig cfg = blackbox_config(model);
  auto zs = testing::simulate_measurements(model, 10);

  // Four consecutive saturated bins (railed amplifier at 1e300): each
  // faulty step climbs one recovery rung — force_calculation,
  // reseed_policy0, covariance_reset, then the sticky SSKF fallback, which
  // the serve-layer guard flags as stream divergence -> quarantine.
  testing::FaultInjector injector(seed);
  for (std::size_t n = 2; n <= 5; ++n) {
    testing::FaultEvent e;
    e.step = n;
    e.kind = testing::FaultKind::kSaturation;
    e.index = injector.next_index(6);
    e.magnitude = 1e300;
    injector.schedule(e);
  }

  DecodeServer server({ServerOptions::kManual, 4});
  const SessionId id = server.open_session(cfg);
  ASSERT_NE(id, DecodeServer::kInvalidSession);
  for (std::size_t n = 0; n < zs.size(); ++n) {
    {
      // Attribute the injector's kFaultInjected journal entries to the
      // session they poison, like an instrumented ingest path would.
      telemetry::ScopedFlightSession flight(id, n);
      injector.corrupt(zs[n], n);
    }
    server.submit(id, zs[n]);
  }
  drain_manual(server);

  const SessionStatsSnapshot st = server.session_stats(id);
  EXPECT_EQ(st.state, SessionState::kQuarantined);
  EXPECT_EQ(st.invalid_steps, 1u);  // the fallback-engaged step
  EXPECT_EQ(st.steps, 5u);          // 2 clean + 3 sanitized faulty steps

  auto& blackbox = telemetry::FlightRecorder::global();
  const std::vector<telemetry::FlightEvent> events = blackbox.dump(id);
  ASSERT_FALSE(events.empty());

  // Sequence: the injected fault precedes the first health fault, which
  // precedes the first ladder rung; the journal ends at the quarantine.
  auto first_of = [&](telemetry::FlightEventKind kind) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind == kind) return std::ptrdiff_t(i);
    }
    return std::ptrdiff_t(-1);
  };
  const auto injected = first_of(telemetry::FlightEventKind::kFaultInjected);
  const auto fault = first_of(telemetry::FlightEventKind::kHealthFault);
  const auto rung = first_of(telemetry::FlightEventKind::kRecovery);
  const auto invalid = first_of(telemetry::FlightEventKind::kInvalidStep);
  ASSERT_GE(injected, 0);
  ASSERT_GE(fault, 0);
  ASSERT_GE(rung, 0);
  ASSERT_GE(invalid, 0);
  EXPECT_LT(injected, fault);
  EXPECT_LT(fault, rung);
  EXPECT_LT(rung, invalid);
  EXPECT_EQ(events.back().kind, telemetry::FlightEventKind::kQuarantine);

  // The ladder climbed one rung per faulty step, in order.
  std::vector<RecoveryAction> rungs;
  for (const auto& e : events) {
    if (e.kind == telemetry::FlightEventKind::kRecovery) {
      rungs.push_back(static_cast<RecoveryAction>(e.arg));
    }
  }
  const std::vector<RecoveryAction> expected = {
      RecoveryAction::kForceCalculation, RecoveryAction::kReseedPolicy0,
      RecoveryAction::kCovarianceReset, RecoveryAction::kSskfFallback};
  EXPECT_EQ(rungs, expected);

  // Acceptance gate: per-action journal counts equal the
  // kalmmind.kf.recoveries_total.* counter deltas (values were reset at
  // test start, so the counter value *is* the delta).
  auto& reg = telemetry::MetricsRegistry::global();
  std::map<std::string, std::uint64_t> journaled;
  for (const auto& e : events) {
    if (e.kind == telemetry::FlightEventKind::kRecovery) {
      ++journaled[kalman::to_string(static_cast<RecoveryAction>(e.arg))];
    }
  }
  for (const char* action :
       {"skip_measurement", "gate_channels", "force_calculation",
        "reseed_policy0", "covariance_reset", "sskf_fallback"}) {
    const std::uint64_t counted =
        reg.counter(std::string("kalmmind.kf.recoveries_total.") + action)
            .value();
    EXPECT_EQ(counted, journaled[action]) << action;
  }

  // The quarantine wrote the postmortem JSONL and it round-trips to the
  // same journal (nothing was recorded after the quarantine event).
  const std::string path =
      dump_dir + "/blackbox_" + std::to_string(id) + "_quarantine.jsonl";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto parsed = telemetry::parse_jsonl(ss.str());
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, events[i].kind) << i;
    EXPECT_EQ(parsed[i].step, events[i].step) << i;
    EXPECT_EQ(parsed[i].arg, events[i].arg) << i;
  }
  fs::remove(path);
}

#endif  // KALMMIND_FAULTS

TEST(ServeBlackboxTest, SloRollupTracksDeadlineAttainment) {
  reset_telemetry("");
  const auto model = testing::small_model(4);
  const auto zs = testing::simulate_measurements(model, 6);

  DecodeServer server({ServerOptions::kManual, 4});
  SessionConfig relaxed;
  relaxed.filter.model = model;
  relaxed.deadline_s = 3600.0;  // never missed
  SessionConfig strict = relaxed;
  strict.deadline_s = 1e-12;  // always missed

  const SessionId ok = server.open_session(relaxed);
  const SessionId late = server.open_session(strict);
  ASSERT_NE(ok, DecodeServer::kInvalidSession);
  ASSERT_NE(late, DecodeServer::kInvalidSession);
  for (const auto& z : zs) {
    server.submit(ok, z);
    server.submit(late, z);
  }
  drain_manual(server);

  // 12 steps, 6 misses -> 50% attainment, and the per-session percentile
  // rollup is populated and ordered.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.total_steps, 12u);
  EXPECT_EQ(stats.total_deadline_misses, 6u);
  EXPECT_DOUBLE_EQ(stats.deadline_slo, 0.5);
  ASSERT_EQ(stats.per_session.size(), 2u);
  for (const SessionStatsSnapshot& s : stats.per_session) {
    EXPECT_GT(s.p50_step_s, 0.0);
    EXPECT_LE(s.p50_step_s, s.p95_step_s);
    EXPECT_LE(s.p95_step_s, s.p99_step_s);
  }
  EXPECT_NE(stats.to_string().find("slo"), std::string::npos);

  if (telemetry::kCompiledIn) {
    EXPECT_DOUBLE_EQ(
        telemetry::MetricsRegistry::global()
            .gauge("kalmmind.serve.slo_attainment")
            .value(),
        0.5);
    // Every missed deadline is journaled against the late session.
    const auto events = telemetry::FlightRecorder::global().dump(late);
    std::size_t misses = 0;
    for (const auto& e : events) {
      if (e.kind == telemetry::FlightEventKind::kDeadlineMiss) ++misses;
    }
    EXPECT_EQ(misses, 6u);
  }
}

TEST(ServeBlackboxTest, FailedSessionWritesFailurePostmortem) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF: recorder compiles to no-ops";
  }
  const std::string dump_dir = ::testing::TempDir();
  reset_telemetry(dump_dir);

  const auto model = testing::small_model(4);
  SessionConfig cfg = blackbox_config(model);
  cfg.self_healing.max_restarts = 1;
  cfg.self_healing.backoff_initial_bins = 1;
  const auto zs = testing::simulate_measurements(model, 3);
  // Health is deliberately OFF here so a NaN bin diverges the filter
  // outright instead of being absorbed by skip_measurement.
  cfg.filter.options.health.enabled = false;

  Vector<double> nan_bin(4);
  for (std::size_t i = 0; i < 4; ++i) {
    nan_bin[i] = std::numeric_limits<double>::quiet_NaN();
  }

  DecodeServer server({ServerOptions::kManual, 4});
  const SessionId id = server.open_session(cfg);
  ASSERT_NE(id, DecodeServer::kInvalidSession);
  // NaN -> quarantine; clean -> backoff; NaN -> restart + diverge again:
  // max_restarts=1 is exhausted and the session fails for good.
  server.submit(id, nan_bin);
  server.submit(id, zs[0]);
  server.submit(id, nan_bin);
  drain_manual(server);

  EXPECT_EQ(server.session_stats(id).state, SessionState::kFailed);
  const auto events = telemetry::FlightRecorder::global().dump(id);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, telemetry::FlightEventKind::kFailed);

  // Both lifecycle postmortems exist: the first quarantine and the final
  // failure, each a parseable JSONL journal.
  for (const char* reason : {"quarantine", "failed"}) {
    const std::string path = dump_dir + "/blackbox_" + std::to_string(id) +
                             "_" + reason + ".jsonl";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_FALSE(telemetry::parse_jsonl(ss.str()).empty()) << path;
    in.close();
    fs::remove(path);
  }
}

}  // namespace
}  // namespace kalmmind::serve
