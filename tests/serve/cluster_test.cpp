// ShardedDecodeServer: consistent-hash placement, admission control with
// retry-with-backoff, lossless drain migration, and seeded shard-kill
// chaos — checkpointed sessions must resume on another shard bit-identical
// to an uninterrupted solo run, with bin conservation closed:
// decoded + queued + dropped + discarded == submitted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "kalman/factory.hpp"
#include "kalman/filter.hpp"
#include "serve/serve.hpp"
#include "../kalman/kalman_test_util.hpp"

namespace kalmmind::serve {
namespace {

using linalg::Vector;

SessionConfig interleaved_config(const kalman::KalmanModel<double>& model) {
  SessionConfig cfg;
  cfg.filter.model = model;
  cfg.filter.strategy.kind = kalman::StrategyKind::kInterleaved;
  cfg.filter.strategy.calc_freq = 3;
  cfg.filter.strategy.approx = 2;
  cfg.filter.strategy.policy = kalman::SeedPolicy::kPreviousIteration;
  cfg.queue_capacity = 1024;
  return cfg;
}

std::vector<Vector<double>> solo_trajectory(
    const SessionConfig& cfg, const std::vector<Vector<double>>& zs) {
  kalman::KalmanFilter<double> filter = cfg.filter.make_filter();
  std::vector<Vector<double>> states;
  for (const auto& z : zs) states.push_back(filter.step(z));
  return states;
}

void expect_bit_identical(const std::vector<Vector<double>>& got,
                          const std::vector<Vector<double>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t n = 0; n < got.size(); ++n) {
    ASSERT_EQ(got[n].size(), want[n].size());
    for (std::size_t d = 0; d < got[n].size(); ++d)
      ASSERT_EQ(got[n][d], want[n][d]) << "step " << n << " dim " << d;
  }
}

// decoded + queued + dropped + discarded (+ divergence/quarantine sinks)
// must equal the bins the cluster accepted; accepted + rejections must
// equal the attempts the client made.
void expect_conservation(const ClusterStats& s, std::uint64_t attempts) {
  EXPECT_EQ(s.submitted + s.rejected_overload + s.rejected_full, attempts);
  EXPECT_EQ(s.decoded + s.invalid_steps + s.quarantine_dropped + s.dropped +
                s.discarded + s.queued,
            s.submitted);
}

TEST(ServeClusterTest, PlacementSpreadsSessionsAndDecodesBitExact) {
  const auto model = testing::small_model(6);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kSteps = 30;

  ClusterOptions opts;
  opts.shards = 4;
  ShardedDecodeServer cluster(opts);

  std::vector<SessionId> ids;
  std::vector<std::vector<Vector<double>>> streams;
  for (std::size_t s = 0; s < kSessions; ++s) {
    Status status;
    const SessionId id = cluster.open_session(cfg, &status);
    ASSERT_NE(id, ShardedDecodeServer::kInvalidSession) << status.message();
    ids.push_back(id);
    streams.push_back(testing::simulate_measurements(model, kSteps, 500 + s));
  }

  std::uint64_t attempts = 0;
  for (std::size_t n = 0; n < kSteps; ++n)
    for (std::size_t s = 0; s < kSessions; ++s) {
      ++attempts;
      ASSERT_TRUE(cluster.submit(ids[s], streams[s][n]).ok());
    }
  cluster.drain();

  for (std::size_t s = 0; s < kSessions; ++s)
    expect_bit_identical(cluster.trajectory(ids[s]),
                         solo_trajectory(cfg, streams[s]));

  const ClusterStats stats = cluster.stats();
  expect_conservation(stats, attempts);
  EXPECT_EQ(stats.decoded, kSessions * kSteps);
  // The ring spread the sessions over more than one shard.
  std::size_t used = 0;
  for (const auto& shard : stats.per_shard)
    used += shard.server.total_steps > 0 ? 1 : 0;
  EXPECT_GT(used, 1u);
}

TEST(ServeClusterTest, OverloadReturnsRetryableStatusAndBackoffLandsAll) {
  const auto model = testing::small_model(4);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kSteps = 40;

  ClusterOptions opts;
  opts.shards = 1;  // one shard so the watermark is easy to trip
  opts.high_watermark = 8;
  opts.low_watermark = 2;
  ShardedDecodeServer cluster(opts);
  const SessionId id = cluster.open_session(cfg);
  ASSERT_NE(id, ShardedDecodeServer::kInvalidSession);
  const auto zs = testing::simulate_measurements(model, kSteps, 9);

  // Unpumped, raw submits trip the watermark with a *retryable* Overloaded
  // Status — never an unbounded queue, never a block.
  std::size_t direct_ok = 0;
  Status overload = Status::Ok();
  for (std::size_t n = 0; n < 12; ++n) {
    const Status s = cluster.submit(id, zs[n]);
    if (s.ok()) {
      ++direct_ok;
    } else {
      overload = s;
    }
  }
  ASSERT_FALSE(overload.ok());
  EXPECT_EQ(overload.code(), StatusCode::kOverloaded);
  EXPECT_TRUE(overload.retryable());
  EXPECT_LT(direct_ok, 12u);

  // The retry client lands every remaining bin: between attempts it pumps
  // the cluster (the deterministic stand-in for backoff sleep), draining
  // the shard below the low watermark so hysteresis re-admits.
  RetryingSubmitter::Policy policy;
  policy.seed = 0x5eed;
  RetryingSubmitter submitter(cluster, policy);
  submitter.set_between_attempts([&] { cluster.pump(); });
  std::uint64_t attempts = 12;  // the direct probes above
  for (std::size_t n = direct_ok; n < kSteps; ++n) {
    // Replay the bins the probes failed to land, then the rest, in order.
    const Status s = submitter.submit(id, zs[n]);
    ASSERT_TRUE(s.ok()) << s.message();
  }
  attempts += submitter.stats().attempts;
  cluster.drain();

  const ClusterStats stats = cluster.stats();
  expect_conservation(stats, attempts);
  EXPECT_EQ(stats.decoded, kSteps);
  EXPECT_GT(stats.rejected_overload, 0u);
  EXPECT_EQ(submitter.stats().exhausted, 0u);
  EXPECT_GT(submitter.stats().retries, 0u);
  expect_bit_identical(
      cluster.trajectory(id),
      solo_trajectory(cfg, {zs.begin(), zs.begin() + kSteps}));
}

TEST(ServeClusterTest, DropOldestShedPolicyEvictsInsteadOfRejecting) {
  const auto model = testing::small_model(4);
  const SessionConfig cfg = interleaved_config(model);

  ClusterOptions opts;
  opts.shards = 1;
  opts.high_watermark = 6;
  opts.low_watermark = 2;
  opts.shed = ShedPolicy::kDropOldest;
  ShardedDecodeServer cluster(opts);
  const SessionId id = cluster.open_session(cfg);
  const auto zs = testing::simulate_measurements(model, 20, 11);

  std::uint64_t attempts = 0;
  for (const auto& z : zs) {
    ++attempts;
    // kDropOldest sheds by eviction: submits keep succeeding.
    ASSERT_TRUE(cluster.submit(id, z).ok());
  }
  cluster.drain();

  const ClusterStats stats = cluster.stats();
  expect_conservation(stats, attempts);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.rejected_overload, 0u);
}

TEST(ServeClusterTest, DrainShardMigratesLosslesslyAndBitExact) {
  const auto model = testing::small_model(6);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kSteps = 40;
  constexpr std::size_t kDecodedBeforeDrain = 25;

  ClusterOptions opts;
  opts.shards = 3;
  ShardedDecodeServer cluster(opts);

  std::vector<SessionId> ids;
  std::vector<std::vector<Vector<double>>> streams;
  for (std::size_t s = 0; s < kSessions; ++s) {
    ids.push_back(cluster.open_session(cfg));
    ASSERT_NE(ids.back(), ShardedDecodeServer::kInvalidSession);
    streams.push_back(testing::simulate_measurements(model, kSteps, 700 + s));
  }

  std::uint64_t attempts = 0;
  for (std::size_t n = 0; n < kDecodedBeforeDrain; ++n)
    for (std::size_t s = 0; s < kSessions; ++s) {
      ++attempts;
      ASSERT_TRUE(cluster.submit(ids[s], streams[s][n]).ok());
    }
  cluster.drain();
  // Leave undecoded bins queued: the drain must move them too, in order.
  for (std::size_t n = kDecodedBeforeDrain; n < kSteps; ++n)
    for (std::size_t s = 0; s < kSessions; ++s) {
      ++attempts;
      ASSERT_TRUE(cluster.submit(ids[s], streams[s][n]).ok());
    }

  const std::size_t victim = cluster.shard_of(ids[0]);
  ASSERT_TRUE(cluster.drain_shard(victim).ok());
  EXPECT_NE(cluster.shard_of(ids[0]), victim);
  EXPECT_EQ(cluster.shard_state(victim), ShardState::kHealthy);  // rebuilt
  cluster.drain();

  for (std::size_t s = 0; s < kSessions; ++s)
    expect_bit_identical(cluster.trajectory(ids[s]),
                         solo_trajectory(cfg, streams[s]));

  const ClusterStats stats = cluster.stats();
  expect_conservation(stats, attempts);
  EXPECT_EQ(stats.decoded, kSessions * kSteps);
  EXPECT_EQ(stats.discarded, 0u);  // lossless: nothing was thrown away
  EXPECT_GT(stats.sessions_migrated, 0u);
  EXPECT_GT(stats.shard_rebuilds, 0u);
}

// The quiesce/fence protocol under real concurrency (the TSan rerun's
// target): pump() from several threads while a drain migration fences,
// quiesces and rebuilds a shard mid-stream.  Submits that hit the fence
// come back retryable and land on retry; every stream stays bit-identical.
TEST(ServeClusterTest, ConcurrentPumpingSurvivesDrainMigration) {
  const auto model = testing::small_model(4);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kSteps = 80;
  constexpr std::size_t kMigrateAt = 40;

  ClusterOptions opts;
  opts.shards = 3;
  opts.checkpoint_every_bins = 0;
  ShardedDecodeServer cluster(opts);

  std::vector<SessionId> ids;
  std::vector<std::vector<Vector<double>>> streams;
  for (std::size_t s = 0; s < kSessions; ++s) {
    ids.push_back(cluster.open_session(cfg));
    ASSERT_NE(ids.back(), ShardedDecodeServer::kInvalidSession);
    streams.push_back(testing::simulate_measurements(model, kSteps, 7100 + s));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> pumpers;
  for (int t = 0; t < 4; ++t) {
    pumpers.emplace_back([&] {
      while (!stop.load()) cluster.pump();
    });
  }

  RetryingSubmitter::Policy policy;
  policy.max_attempts = 10000;  // the fence window is transient; outlast it
  RetryingSubmitter client(cluster, policy);
  client.set_between_attempts([] { std::this_thread::yield(); });

  for (std::size_t n = 0; n < kSteps; ++n) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      const Status st = client.submit(ids[s], streams[s][n]);
      ASSERT_TRUE(st.ok()) << st.message();
    }
    if (n == kMigrateAt) {
      const Status st = cluster.drain_shard(cluster.shard_of(ids[0]));
      ASSERT_TRUE(st.ok()) << st.message();
    }
  }
  cluster.drain();
  stop.store(true);
  for (auto& t : pumpers) t.join();

  for (std::size_t s = 0; s < kSessions; ++s)
    expect_bit_identical(cluster.trajectory(ids[s]),
                         solo_trajectory(cfg, streams[s]));
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.decoded, kSessions * kSteps);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.discarded, 0u);  // drain migration is lossless
  EXPECT_GT(stats.sessions_migrated, 0u);
}

TEST(ServeClusterTest, CloseDiscardCountsQueuedBins) {
  const auto model = testing::small_model(4);
  const SessionConfig cfg = interleaved_config(model);
  ClusterOptions opts;
  opts.shards = 2;
  ShardedDecodeServer cluster(opts);
  const SessionId id = cluster.open_session(cfg);
  const auto zs = testing::simulate_measurements(model, 10, 3);

  for (std::size_t n = 0; n < 4; ++n)
    ASSERT_TRUE(cluster.submit(id, zs[n]).ok());
  cluster.drain();
  for (std::size_t n = 4; n < 10; ++n)
    ASSERT_TRUE(cluster.submit(id, zs[n]).ok());

  ASSERT_TRUE(cluster.close_session(id, CloseMode::kDiscard));
  EXPECT_FALSE(cluster.submit(id, zs[0]).ok());
  cluster.drain();

  const auto stats = cluster.session_stats(id);
  EXPECT_EQ(stats.steps, 4u);
  EXPECT_EQ(stats.discarded, 6u);  // the queued tail, counted not lost
  expect_conservation(cluster.stats(), 10);
}

// tick() reaps finished routes: the closed session's counters fold into
// the cluster totals (conservation keeps closing), its route and shard
// slot are freed, and the id turns permanently unknown.
TEST(ServeClusterTest, TickReapsFinishedRoutesAndKeepsConservation) {
  const auto model = testing::small_model(4);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kSteps = 10;

  ClusterOptions opts;
  opts.shards = 2;
  ShardedDecodeServer cluster(opts);
  const SessionId keep = cluster.open_session(cfg);
  const SessionId gone = cluster.open_session(cfg);
  ASSERT_NE(keep, ShardedDecodeServer::kInvalidSession);
  ASSERT_NE(gone, ShardedDecodeServer::kInvalidSession);
  const auto zs = testing::simulate_measurements(model, kSteps, 21);

  std::uint64_t attempts = 0;
  for (std::size_t n = 0; n < kSteps; ++n) {
    attempts += 2;
    ASSERT_TRUE(cluster.submit(keep, zs[n]).ok());
    ASSERT_TRUE(cluster.submit(gone, zs[n]).ok());
  }
  cluster.drain();
  ASSERT_TRUE(cluster.close_session(gone, CloseMode::kDrain));
  cluster.tick();

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.sessions_reaped, 1u);
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_EQ(stats.decoded, 2 * kSteps);  // the reaped decodes still count
  expect_conservation(stats, attempts);

  // The reaped id is permanently unknown; the survivor keeps decoding.
  EXPECT_TRUE(cluster.trajectory(gone).empty());
  const Status st = cluster.submit(gone, zs[0]);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.retryable());
  ASSERT_TRUE(cluster.submit(keep, zs[0]).ok());
  cluster.drain();
  EXPECT_EQ(cluster.stats().decoded, 2 * kSteps + 1);
}

// Stall detection without fault hooks: the pumpers simply stop reaching a
// shard with a backlog.  The ladder must climb healthy -> probe ->
// quarantine from the observable condition alone (queued bins, zero step
// delta) and fail the sessions over to a pumped shard.
TEST(ServeClusterTest, BackloggedUnpumpedShardEscalatesToQuarantine) {
  const auto model = testing::small_model(4);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kSteps = 40;
  constexpr std::size_t kCheckpointAt = 20;
  constexpr std::size_t kQueuedAtStall = 8;

  ClusterOptions opts;
  opts.shards = 2;
  opts.checkpoint_every_bins = 0;
  opts.escalate_after_ticks = 2;
  ShardedDecodeServer cluster(opts);
  const SessionId id = cluster.open_session(cfg);
  ASSERT_NE(id, ShardedDecodeServer::kInvalidSession);
  const auto zs = testing::simulate_measurements(model, kSteps, 99);

  std::uint64_t attempts = 0;
  for (std::size_t n = 0; n < kCheckpointAt; ++n) {
    ++attempts;
    ASSERT_TRUE(cluster.submit(id, zs[n]).ok());
  }
  cluster.drain();
  ASSERT_TRUE(cluster.checkpoint(id).ok());

  // Queue a backlog and never pump again: a genuinely wedged deployment.
  const std::size_t victim = cluster.shard_of(id);
  for (std::size_t n = kCheckpointAt; n < kCheckpointAt + kQueuedAtStall;
       ++n) {
    ++attempts;
    ASSERT_TRUE(cluster.submit(id, zs[n]).ok());
  }
  for (int i = 0; i < 6 && cluster.stats().shard_quarantines == 0; ++i)
    cluster.tick();

  EXPECT_EQ(cluster.stats().shard_quarantines, 1u);
  EXPECT_NE(cluster.shard_of(id), victim);
  EXPECT_EQ(cluster.next_expected_bin(id), kCheckpointAt);

  for (std::size_t n = cluster.next_expected_bin(id); n < kSteps; ++n) {
    ++attempts;
    ASSERT_TRUE(cluster.submit(id, zs[n]).ok());
  }
  cluster.drain();

  expect_bit_identical(cluster.trajectory(id), solo_trajectory(cfg, zs));
  const ClusterStats stats = cluster.stats();
  expect_conservation(stats, attempts);
  EXPECT_EQ(stats.decoded, kSteps);
  EXPECT_EQ(cluster.shard_state(victim), ShardState::kHealthy);  // rebuilt
}

// close(kDiscard) racing a drain migration: whichever interleaving wins —
// applied on the source before the fence, deferred past it, or applied on
// the restored incarnation — the queued tail must be *discarded*, never
// silently decoded by a hard-coded kDrain in the migration path.
TEST(ServeClusterTest, DiscardCloseKeepsSemanticsAcrossDrainMigration) {
  const auto model = testing::small_model(4);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kHead = 12;
  constexpr std::size_t kTail = 6;

  ClusterOptions opts;
  opts.shards = 2;
  ShardedDecodeServer cluster(opts);
  const SessionId id = cluster.open_session(cfg);
  ASSERT_NE(id, ShardedDecodeServer::kInvalidSession);
  const auto zs = testing::simulate_measurements(model, kHead + kTail, 13);

  for (std::size_t n = 0; n < kHead; ++n)
    ASSERT_TRUE(cluster.submit(id, zs[n]).ok());
  cluster.drain();
  for (std::size_t n = kHead; n < kHead + kTail; ++n)
    ASSERT_TRUE(cluster.submit(id, zs[n]).ok());

  const std::size_t victim = cluster.shard_of(id);
  std::thread admin([&] {
    const Status st = cluster.drain_shard(victim);
    EXPECT_TRUE(st.ok()) << st.message();
  });
  ASSERT_TRUE(cluster.close_session(id, CloseMode::kDiscard));
  admin.join();
  cluster.drain();

  const auto s = cluster.session_stats(id);
  EXPECT_EQ(s.steps, kHead);
  EXPECT_EQ(s.discarded, kTail);  // discard semantics survived the race
  expect_conservation(cluster.stats(), kHead + kTail);
}

// open_session racing a rebuild storm: placement, the shard-local open,
// and the route insertion happen under admin_mu_, so an open can neither
// run inside a DecodeServer that a failover is destroying nor strand its
// local id on an incarnation a migration sweep already condemned.
TEST(ServeClusterTest, ConcurrentOpensSurviveDrainMigrations) {
  const auto model = testing::small_model(4);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kSessions = 12;
  constexpr std::size_t kSteps = 8;

  ClusterOptions opts;
  opts.shards = 3;
  ShardedDecodeServer cluster(opts);

  std::atomic<bool> stop{false};
  std::thread admin([&] {
    std::size_t s = 0;
    while (!stop.load()) {
      (void)cluster.drain_shard(s++ % 3);
      std::this_thread::yield();
    }
  });

  RetryingSubmitter::Policy policy;
  policy.max_attempts = 100000;  // fences are transient; outlast them
  RetryingSubmitter client(cluster, policy);
  client.set_between_attempts([&] { cluster.pump(); });

  std::vector<SessionId> ids;
  std::vector<std::vector<Vector<double>>> streams;
  for (std::size_t s = 0; s < kSessions; ++s) {
    Status status;
    const SessionId id = cluster.open_session(cfg, &status);
    ASSERT_NE(id, ShardedDecodeServer::kInvalidSession) << status.message();
    ids.push_back(id);
    streams.push_back(testing::simulate_measurements(model, kSteps, 4400 + s));
    for (std::size_t n = 0; n < kSteps; ++n) {
      const Status st = client.submit(ids[s], streams[s][n]);
      ASSERT_TRUE(st.ok()) << st.message();
    }
  }
  stop.store(true);
  admin.join();
  cluster.drain();

  for (std::size_t s = 0; s < kSessions; ++s)
    expect_bit_identical(cluster.trajectory(ids[s]),
                         solo_trajectory(cfg, streams[s]));
  EXPECT_EQ(cluster.stats().decoded, kSessions * kSteps);
}

TEST(ServeClusterTest, UnknownSessionIsPermanentNotRetryable) {
  ShardedDecodeServer cluster;
  const Status s = cluster.submit(999, Vector<double>(3));
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.retryable());
}

#if defined(KALMMIND_FAULTS)

// The acceptance chaos scenario: seeded fail_shard mid-stream.  Sessions
// checkpointed on the dead shard resume on healthy shards; their decoded
// trajectories (prefix + resumed incarnation) are bit-identical to an
// uninterrupted solo run once the client resubmits from its cursor; and
// conservation closes — decoded + discarded + rejected == submitted.
TEST(ServeClusterTest, SeededShardKillResumesBitIdenticalElsewhere) {
  const auto model = testing::small_model(6);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kSteps = 60;
  constexpr std::size_t kCheckpointAt = 30;
  constexpr std::size_t kQueuedAtKill = 10;  // bins lost with the shard

  ClusterOptions opts;
  opts.shards = 3;
  opts.checkpoint_every_bins = 0;  // explicit checkpoints only
  ShardedDecodeServer cluster(opts);

  std::vector<SessionId> ids;
  std::vector<std::vector<Vector<double>>> streams;
  for (std::size_t s = 0; s < kSessions; ++s) {
    ids.push_back(cluster.open_session(cfg));
    ASSERT_NE(ids.back(), ShardedDecodeServer::kInvalidSession);
    streams.push_back(testing::simulate_measurements(model, kSteps, 900 + s));
  }

  std::uint64_t attempts = 0;
  for (std::size_t n = 0; n < kCheckpointAt; ++n)
    for (std::size_t s = 0; s < kSessions; ++s) {
      ++attempts;
      ASSERT_TRUE(cluster.submit(ids[s], streams[s][n]).ok());
    }
  cluster.drain();
  EXPECT_EQ(cluster.checkpoint_all(), kSessions);

  // Bins accepted after the checkpoint sit in queues; on the victim shard
  // they die with it and must be counted discarded.
  for (std::size_t n = kCheckpointAt; n < kCheckpointAt + kQueuedAtKill; ++n)
    for (std::size_t s = 0; s < kSessions; ++s) {
      ++attempts;
      ASSERT_TRUE(cluster.submit(ids[s], streams[s][n]).ok());
    }

  const std::size_t victim = cluster.shard_of(ids[0]);
  std::vector<std::size_t> pre_shard;
  for (std::size_t s = 0; s < kSessions; ++s)
    pre_shard.push_back(cluster.shard_of(ids[s]));
  cluster.fault_fail_shard(victim);

  // Every session that lived on the victim moved and rewound to its
  // checkpoint; survivors kept their queues.
  for (std::size_t s = 0; s < kSessions; ++s) {
    if (pre_shard[s] == victim) {
      EXPECT_NE(cluster.shard_of(ids[s]), victim) << s;
      EXPECT_EQ(cluster.next_expected_bin(ids[s]), kCheckpointAt) << s;
    } else {
      EXPECT_EQ(cluster.next_expected_bin(ids[s]),
                kCheckpointAt + kQueuedAtKill)
          << s;
    }
  }

  // Clients resume from their cursor (resubmitting what the dead shard
  // lost) and stream the rest.
  for (std::size_t s = 0; s < kSessions; ++s) {
    for (std::size_t n = cluster.next_expected_bin(ids[s]); n < kSteps; ++n) {
      ++attempts;
      const Status st = cluster.submit(ids[s], streams[s][n]);
      ASSERT_TRUE(st.ok()) << st.message();
    }
  }
  cluster.drain();

  for (std::size_t s = 0; s < kSessions; ++s)
    expect_bit_identical(cluster.trajectory(ids[s]),
                         solo_trajectory(cfg, streams[s]));

  const ClusterStats stats = cluster.stats();
  expect_conservation(stats, attempts);
  EXPECT_EQ(stats.decoded, kSessions * kSteps);
  EXPECT_GT(stats.discarded, 0u);  // the dead shard's queues, acknowledged
  EXPECT_EQ(stats.shard_quarantines, 1u);
  EXPECT_GT(stats.sessions_migrated, 0u);
  EXPECT_EQ(cluster.shard_state(victim), ShardState::kHealthy);  // rebuilt
}

// A stalled shard (consumer wedged, queues growing) escalates the ladder:
// healthy -> probe -> quarantine (snapshot failover), then rebuilds.
TEST(ServeClusterTest, StalledShardClimbsLadderToQuarantine) {
  const auto model = testing::small_model(4);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kSteps = 40;
  constexpr std::size_t kCheckpointAt = 20;

  ClusterOptions opts;
  opts.shards = 2;
  opts.checkpoint_every_bins = 0;
  opts.escalate_after_ticks = 2;
  ShardedDecodeServer cluster(opts);
  const SessionId id = cluster.open_session(cfg);
  ASSERT_NE(id, ShardedDecodeServer::kInvalidSession);
  const auto zs = testing::simulate_measurements(model, kSteps, 77);

  std::uint64_t attempts = 0;
  for (std::size_t n = 0; n < kCheckpointAt; ++n) {
    ++attempts;
    ASSERT_TRUE(cluster.submit(id, zs[n]).ok());
  }
  cluster.drain();
  ASSERT_TRUE(cluster.checkpoint(id).ok());

  const std::size_t victim = cluster.shard_of(id);
  cluster.fault_stall_shard(victim, true);
  for (std::size_t n = kCheckpointAt; n < kCheckpointAt + 8; ++n) {
    ++attempts;
    ASSERT_TRUE(cluster.submit(id, zs[n]).ok());  // queues into the wedge
  }

  // Ladder cadence: tick 1 absorbs the pre-stall step delta; ticks 2-3
  // escalate healthy -> probe; ticks 4-5 escalate probe -> quarantine.
  for (int i = 0; i < 6 && cluster.stats().shard_quarantines == 0; ++i)
    cluster.tick();

  const ClusterStats mid = cluster.stats();
  EXPECT_EQ(mid.shard_quarantines, 1u);
  EXPECT_NE(cluster.shard_of(id), victim);

  for (std::size_t n = cluster.next_expected_bin(id); n < kSteps; ++n) {
    ++attempts;
    ASSERT_TRUE(cluster.submit(id, zs[n]).ok());
  }
  cluster.drain();

  expect_bit_identical(cluster.trajectory(id), solo_trajectory(cfg, zs));
  const ClusterStats stats = cluster.stats();
  expect_conservation(stats, attempts);
  EXPECT_EQ(stats.decoded, kSteps);
  EXPECT_EQ(cluster.shard_state(victim), ShardState::kHealthy);
}

// The scripts/chaos.sh shard-kill scenario: a seeded storm of fail_shard
// events against a streaming fleet (KALMMIND_CHAOS_SEED selects victims,
// kill points, and pump depth).  Invariants for any seed: every stream
// finishes bit-identical to its solo run after clients resubmit from
// next_expected_bin, conservation closes every round, and every victim
// shard rejoins the ring healthy.
TEST(ServeChaosTest, SeededShardKillStormPreservesEveryStream) {
  std::uint64_t seed = 7;
  if (const char* env = std::getenv("KALMMIND_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
    if (seed == 0) seed = 7;
  }
  SCOPED_TRACE("KALMMIND_CHAOS_SEED=" + std::to_string(seed));
  auto next = [state = seed]() mutable {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };

  const auto model = testing::small_model(5);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kSessions = 5;
  constexpr std::size_t kSteps = 48;
  constexpr std::size_t kRounds = 3;

  ClusterOptions opts;
  opts.shards = 4;
  opts.checkpoint_every_bins = 0;  // snapshots taken at seeded points
  ShardedDecodeServer cluster(opts);

  std::vector<SessionId> ids;
  std::vector<std::vector<Vector<double>>> streams;
  for (std::size_t s = 0; s < kSessions; ++s) {
    ids.push_back(cluster.open_session(cfg));
    ASSERT_NE(ids.back(), ShardedDecodeServer::kInvalidSession);
    streams.push_back(
        testing::simulate_measurements(model, kSteps, 3000 + seed * 64 + s));
  }

  std::uint64_t attempts = 0;
  std::vector<std::size_t> cursor(kSessions, 0);
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::size_t target = (round + 1) * (kSteps / kRounds);
    for (std::size_t s = 0; s < kSessions; ++s) {
      for (std::size_t n = cursor[s]; n < target; ++n) {
        ++attempts;
        const Status st = cluster.submit(ids[s], streams[s][n]);
        ASSERT_TRUE(st.ok()) << st.message();
      }
    }

    // Decode a seeded amount, snapshot the fleet at that edge, then kill a
    // seeded shard.  Bins past the snapshot die with it and must be both
    // counted discarded and re-coverable from next_expected_bin.
    const std::size_t pumps = next() % 24;
    for (std::size_t p = 0; p < pumps; ++p) cluster.pump();
    EXPECT_EQ(cluster.checkpoint_all(), kSessions);
    const std::size_t victim = next() % opts.shards;
    cluster.fault_fail_shard(victim);
    EXPECT_EQ(cluster.shard_state(victim), ShardState::kHealthy) << "rebuilt";

    for (std::size_t s = 0; s < kSessions; ++s) {
      cursor[s] = cluster.next_expected_bin(ids[s]);
      ASSERT_LE(cursor[s], target) << s;
      for (std::size_t n = cursor[s]; n < target; ++n) {
        ++attempts;
        const Status st = cluster.submit(ids[s], streams[s][n]);
        ASSERT_TRUE(st.ok()) << st.message();
      }
      cursor[s] = target;
    }
    cluster.drain();
    expect_conservation(cluster.stats(), attempts);
  }

  for (std::size_t s = 0; s < kSessions; ++s)
    expect_bit_identical(cluster.trajectory(ids[s]),
                         solo_trajectory(cfg, streams[s]));

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.decoded, kSessions * kSteps);
  EXPECT_EQ(stats.shard_quarantines, kRounds);
  for (std::size_t i = 0; i < opts.shards; ++i)
    EXPECT_EQ(cluster.shard_state(i), ShardState::kHealthy) << i;
}

#endif  // KALMMIND_FAULTS

}  // namespace
}  // namespace kalmmind::serve
