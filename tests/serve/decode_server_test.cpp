// DecodeServer behavior: deterministic decoding, backpressure, deadline
// accounting, admission control and clean shutdown.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kalman/factory.hpp"
#include "kalman/filter.hpp"
#include "serve/serve.hpp"
#include "../kalman/kalman_test_util.hpp"

namespace kalmmind::serve {
namespace {

using linalg::Vector;

SessionConfig interleaved_config(const kalman::KalmanModel<double>& model) {
  SessionConfig cfg;
  cfg.filter.model = model;
  cfg.filter.strategy.kind = kalman::StrategyKind::kInterleaved;
  cfg.filter.strategy.calc_freq = 3;
  cfg.filter.strategy.approx = 2;
  cfg.filter.strategy.policy = kalman::SeedPolicy::kPreviousIteration;
  cfg.queue_capacity = 1024;
  return cfg;
}

// The same decode the server performs, as a plain sequential loop.
std::vector<Vector<double>> sequential_trajectory(
    const SessionConfig& cfg, const std::vector<Vector<double>>& zs) {
  kalman::KalmanFilter<double> filter = cfg.filter.make_filter();
  std::vector<Vector<double>> states;
  for (const auto& z : zs) states.push_back(filter.step(z));
  return states;
}

void expect_bit_identical(const std::vector<Vector<double>>& a,
                          const std::vector<Vector<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) {
    ASSERT_EQ(a[n].size(), b[n].size());
    for (std::size_t d = 0; d < a[n].size(); ++d) {
      // Exact equality on purpose: per-session decode order is sequential,
      // so concurrency must not perturb a single bit.
      ASSERT_EQ(a[n][d], b[n][d]) << "step " << n << " dim " << d;
    }
  }
}

TEST(ServeDecodeServerTest, SessionsAreBitIdenticalToSequentialRuns) {
  const auto model = testing::small_model(6);
  const SessionConfig cfg = interleaved_config(model);

  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kSteps = 40;
  // Distinct measurement stream per session (different seeds).
  std::vector<std::vector<Vector<double>>> streams;
  for (std::size_t s = 0; s < kSessions; ++s) {
    streams.push_back(testing::simulate_measurements(model, kSteps, 100 + s));
  }

  DecodeServer server({/*workers=*/4, /*max_batch=*/3});
  std::vector<SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    Status status;
    const SessionId id = server.open_session(cfg, &status);
    ASSERT_NE(id, DecodeServer::kInvalidSession) << status.message();
    ids.push_back(id);
  }

  // Round-robin arrival, like simultaneous acquisition across subjects.
  for (std::size_t n = 0; n < kSteps; ++n) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      EXPECT_EQ(server.submit(ids[s], streams[s][n]), PushResult::kAccepted);
    }
  }
  server.drain();

  for (std::size_t s = 0; s < kSessions; ++s) {
    SCOPED_TRACE("session " + std::to_string(s));
    expect_bit_identical(server.trajectory(ids[s]),
                         sequential_trajectory(cfg, streams[s]));
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.total_steps, kSessions * kSteps);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.sessions, kSessions);
  EXPECT_EQ(stats.step_latency.samples, kSessions * kSteps);
}

TEST(ServeDecodeServerTest, RejectPolicyBouncesWhenFull) {
  const auto model = testing::small_model(4);
  SessionConfig cfg = interleaved_config(model);
  cfg.queue_capacity = 3;
  cfg.backpressure = BackpressurePolicy::kReject;

  // Manual mode: nothing decodes until poll(), so the queue really fills.
  DecodeServer server({ServerOptions::kManual, 8});
  const SessionId id = server.open_session(cfg);
  ASSERT_NE(id, DecodeServer::kInvalidSession);

  const auto zs = testing::simulate_measurements(model, 5);
  EXPECT_EQ(server.submit(id, zs[0]), PushResult::kAccepted);
  EXPECT_EQ(server.submit(id, zs[1]), PushResult::kAccepted);
  EXPECT_EQ(server.submit(id, zs[2]), PushResult::kAccepted);
  EXPECT_EQ(server.submit(id, zs[3]), PushResult::kRejectedFull);
  EXPECT_EQ(server.submit(id, zs[4]), PushResult::kRejectedFull);

  server.drain();
  // Only the accepted prefix decodes, in order.
  expect_bit_identical(
      server.trajectory(id),
      sequential_trajectory(cfg, {zs.begin(), zs.begin() + 3}));

  const SessionStatsSnapshot st = server.session_stats(id);
  EXPECT_EQ(st.steps, 3u);
  EXPECT_EQ(st.rejected, 2u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(st.max_backlog, 3u);
}

TEST(ServeDecodeServerTest, DropOldestPolicyEvictsStalestBins) {
  const auto model = testing::small_model(4);
  SessionConfig cfg = interleaved_config(model);
  cfg.queue_capacity = 3;
  cfg.backpressure = BackpressurePolicy::kDropOldest;

  DecodeServer server({ServerOptions::kManual, 8});
  const SessionId id = server.open_session(cfg);
  ASSERT_NE(id, DecodeServer::kInvalidSession);

  const auto zs = testing::simulate_measurements(model, 5);
  EXPECT_EQ(server.submit(id, zs[0]), PushResult::kAccepted);
  EXPECT_EQ(server.submit(id, zs[1]), PushResult::kAccepted);
  EXPECT_EQ(server.submit(id, zs[2]), PushResult::kAccepted);
  EXPECT_EQ(server.submit(id, zs[3]), PushResult::kDroppedOldest);  // evicts 0
  EXPECT_EQ(server.submit(id, zs[4]), PushResult::kDroppedOldest);  // evicts 1

  server.drain();
  // The three newest bins decode, from the initial filter state.
  expect_bit_identical(
      server.trajectory(id),
      sequential_trajectory(cfg, {zs.begin() + 2, zs.end()}));

  const SessionStatsSnapshot st = server.session_stats(id);
  EXPECT_EQ(st.steps, 3u);
  EXPECT_EQ(st.dropped, 2u);
  EXPECT_EQ(st.rejected, 0u);
}

TEST(ServeDecodeServerTest, ManualPollPumpsOneBatchAtATime) {
  const auto model = testing::small_model(4);
  SessionConfig cfg = interleaved_config(model);

  DecodeServer server({ServerOptions::kManual, /*max_batch=*/2});
  const SessionId id = server.open_session(cfg);
  const auto zs = testing::simulate_measurements(model, 5);
  for (const auto& z : zs) server.submit(id, z);

  EXPECT_EQ(server.poll(), 2u);  // first quantum: max_batch bins
  EXPECT_EQ(server.session_stats(id).steps, 2u);
  EXPECT_EQ(server.poll(), 2u);
  EXPECT_EQ(server.poll(), 1u);  // remainder
  EXPECT_EQ(server.poll(), 0u);  // nothing ready
  EXPECT_EQ(server.session_stats(id).steps, 5u);
}

TEST(ServeDecodeServerTest, DeadlineAccountingUsesIterationTimings) {
  const auto model = testing::small_model(4);

  // An impossible deadline: every step must be recorded as a miss, with
  // one IterationTiming row per decoded bin.
  SessionConfig cfg = interleaved_config(model);
  cfg.deadline_s = 1e-12;
  DecodeServer server({/*workers=*/2, 8});
  const SessionId id = server.open_session(cfg);
  const auto zs = testing::simulate_measurements(model, 10);
  for (const auto& z : zs) server.submit(id, z);
  server.drain();

  const auto timings = server.timings(id);
  ASSERT_EQ(timings.size(), 10u);
  for (const auto& t : timings) {
    EXPECT_FALSE(t.meets_deadline);
    EXPECT_GT(t.seconds, 0.0);
  }
  EXPECT_EQ(server.session_stats(id).deadline_misses, 10u);

  // A generous deadline: zero misses.
  SessionConfig relaxed = interleaved_config(model);
  relaxed.deadline_s = 10.0;
  const SessionId id2 = server.open_session(relaxed);
  for (const auto& z : zs) server.submit(id2, z);
  server.drain();
  EXPECT_EQ(server.session_stats(id2).deadline_misses, 0u);
  EXPECT_EQ(server.stats().total_deadline_misses, 10u);
}

TEST(ServeDecodeServerTest, AdmissionRejectsBadConfigsWithoutThrowing) {
  const auto model = testing::small_model(4);
  DecodeServer server({/*workers=*/1, 8});

  SessionConfig bad_queue;
  bad_queue.filter.model = model;
  bad_queue.queue_capacity = 0;
  Status status;
  EXPECT_EQ(server.open_session(bad_queue, &status),
            DecodeServer::kInvalidSession);
  EXPECT_FALSE(status.ok());

  SessionConfig bad_strategy;
  bad_strategy.filter.model = model;
  bad_strategy.filter.strategy.kind = kalman::StrategyKind::kTaylor;
  bad_strategy.filter.strategy.taylor_order = 0;  // spec check rejects
  EXPECT_EQ(server.open_session(bad_strategy, &status),
            DecodeServer::kInvalidSession);
  EXPECT_FALSE(status.ok());

  // sskf without a preloaded inverse: FilterConfig::check catches the
  // spec/matrices mismatch — still a Status, not a throw.
  SessionConfig missing_preload;
  missing_preload.filter.model = model;
  missing_preload.filter.strategy.kind = kalman::StrategyKind::kSskf;
  EXPECT_EQ(server.open_session(missing_preload, &status),
            DecodeServer::kInvalidSession);
  EXPECT_FALSE(status.ok());

  // And a good config still opens.
  EXPECT_NE(server.open_session(interleaved_config(model), &status),
            DecodeServer::kInvalidSession);
  EXPECT_TRUE(status.ok());
}

TEST(ServeDecodeServerTest, UnknownAndClosedSessionsRejectSubmits) {
  const auto model = testing::small_model(4);
  DecodeServer server({/*workers=*/1, 8});
  const auto zs = testing::simulate_measurements(model, 3);

  EXPECT_EQ(server.submit(12345, zs[0]), PushResult::kUnknownSession);
  EXPECT_FALSE(server.close_session(12345));

  const SessionId id = server.open_session(interleaved_config(model));
  EXPECT_EQ(server.submit(id, zs[0]), PushResult::kAccepted);
  EXPECT_TRUE(server.close_session(id));
  EXPECT_EQ(server.submit(id, zs[1]), PushResult::kUnknownSession);

  // Already-queued work still decodes after close.
  server.drain();
  EXPECT_EQ(server.session_stats(id).steps, 1u);
  EXPECT_EQ(server.stats().sessions, 0u);  // closed sessions aren't "open"
}

TEST(ServeDecodeServerTest, CleanShutdownWithQueuedWork) {
  const auto model = testing::small_model(6);
  const auto zs = testing::simulate_measurements(model, 200);
  // Destroy the server while plenty of bins are still queued: must not
  // hang, crash, or race (TSan covers the latter).
  for (int round = 0; round < 3; ++round) {
    DecodeServer server({/*workers=*/4, 2});
    std::vector<SessionId> ids;
    for (int s = 0; s < 4; ++s) {
      ids.push_back(server.open_session(interleaved_config(model)));
    }
    for (const auto& z : zs) {
      for (const auto id : ids) server.submit(id, z);
    }
    // No drain() — destructor races the workers on purpose.
  }
  SUCCEED();
}

TEST(ServeDecodeServerTest, CloseModesDrainOrDiscardWithAccounting) {
  const auto model = testing::small_model(4);
  const auto zs = testing::simulate_measurements(model, 12);
  DecodeServer server({/*workers=*/ServerOptions::kManual});

  // kDrain (the default): queued bins still decode after close.
  const SessionId drained = server.open_session(interleaved_config(model));
  for (std::size_t n = 0; n < 5; ++n)
    ASSERT_EQ(server.submit(drained, zs[n]), PushResult::kAccepted);
  ASSERT_TRUE(server.close_session(drained, CloseMode::kDrain));
  server.drain();
  EXPECT_EQ(server.session_stats(drained).steps, 5u);
  EXPECT_EQ(server.session_stats(drained).discarded, 0u);

  // kDiscard: the queued tail is dropped now — and counted, never silent.
  const SessionId discarded = server.open_session(interleaved_config(model));
  for (std::size_t n = 0; n < 3; ++n)
    ASSERT_EQ(server.submit(discarded, zs[n]), PushResult::kAccepted);
  server.drain();
  for (std::size_t n = 3; n < 10; ++n)
    ASSERT_EQ(server.submit(discarded, zs[n]), PushResult::kAccepted);
  ASSERT_TRUE(server.close_session(discarded, CloseMode::kDiscard));
  EXPECT_EQ(server.submit(discarded, zs[0]), PushResult::kUnknownSession);
  server.drain();
  const auto stats = server.session_stats(discarded);
  EXPECT_EQ(stats.steps, 3u);
  EXPECT_EQ(stats.discarded, 7u);
  EXPECT_EQ(server.stats().total_discarded, 7u);
}

TEST(ServeDecodeServerTest, TeardownCountsUndecodedBinsAsDiscarded) {
  const auto model = testing::small_model(4);
  const auto zs = testing::simulate_measurements(model, 8);
  auto& counter = telemetry::MetricsRegistry::global().counter(
      "kalmmind.serve.discarded_total");
  const std::uint64_t before = counter.value();
  {
    DecodeServer server({/*workers=*/ServerOptions::kManual});
    const SessionId id = server.open_session(interleaved_config(model));
    for (const auto& z : zs)
      ASSERT_EQ(server.submit(id, z), PushResult::kAccepted);
    // Destroy with all 8 bins still queued: the destructor must count
    // them, so a teardown never loses bins silently.
  }
  EXPECT_EQ(counter.value() - before, 8u);
}

TEST(ServeDecodeServerTest, TrajectoryRecordingCanBeDisabled) {
  const auto model = testing::small_model(4);
  SessionConfig cfg = interleaved_config(model);
  cfg.record_trajectory = false;
  DecodeServer server({/*workers=*/1, 8});
  const SessionId id = server.open_session(cfg);
  const auto zs = testing::simulate_measurements(model, 8);
  for (const auto& z : zs) server.submit(id, z);
  server.drain();
  EXPECT_TRUE(server.trajectory(id).empty());
  EXPECT_TRUE(server.timings(id).empty());
  EXPECT_EQ(server.session_stats(id).steps, 8u);  // stats still counted
}

TEST(ServeDecodeServerTest, StatsSnapshotAggregatesSessions) {
  const auto model = testing::small_model(4);
  DecodeServer server({/*workers=*/2, 8});
  const SessionId a = server.open_session(interleaved_config(model));
  const SessionId b = server.open_session(interleaved_config(model));
  const auto zs = testing::simulate_measurements(model, 6);
  for (const auto& z : zs) {
    server.submit(a, z);
    server.submit(b, z);
  }
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_EQ(stats.total_steps, 12u);
  EXPECT_EQ(stats.per_session.size(), 2u);
  EXPECT_GT(stats.steps_per_second, 0.0);
  EXPECT_GT(stats.uptime_s, 0.0);
  EXPECT_FALSE(stats.to_string().empty());
}

}  // namespace
}  // namespace kalmmind::serve
