// The string-keyed strategy factory: every advertised name constructs a
// working strategy, unknown names fail cleanly.
#include <gtest/gtest.h>

#include <stdexcept>

#include "kalman/factory.hpp"
#include "linalg/random.hpp"
#include "linalg/norms.hpp"
#include "linalg/ops.hpp"

namespace kalmmind {
namespace {

using kalman::StrategyParams;
using linalg::Matrix;

Matrix<double> spd(std::size_t n, std::uint64_t seed = 11) {
  linalg::Rng rng(seed);
  return linalg::random_spd<double>(n, rng, /*ridge=*/2.0);
}

StrategyParams<double> params_for(const std::string& name,
                                  const Matrix<double>& s) {
  StrategyParams<double> p;
  if (name == "lite" || name == "sskf") {
    p.preloaded_inverse = linalg::invert_gauss(s);
  }
  if (name == "sskf") p.interleave.approx = 2;
  if (name == "newton") p.newton_iterations = 40;  // converge from cold seed
  return p;
}

TEST(ServeFactoryTest, EveryAdvertisedNameConstructsAndInverts) {
  const Matrix<double> s = spd(4);
  const Matrix<double> identity = Matrix<double>::identity(4);
  for (const auto& name : kalman::inverse_strategy_names()) {
    SCOPED_TRACE(name);
    auto strategy =
        kalman::make_inverse_strategy<double>(name, params_for(name, s));
    ASSERT_NE(strategy, nullptr);
    const Matrix<double> inv = strategy->invert(s, 0);
    Matrix<double> product;
    linalg::multiply_into(product, s, inv);
    product -= identity;
    // Every strategy at iteration 0 either computes the exact inverse or
    // (newton/ifkf) a convergent approximation — all should be close on a
    // well-conditioned 4x4.
    EXPECT_LT(linalg::frobenius_norm(product), 0.7);
    EXPECT_FALSE(strategy->name().empty());
  }
}

TEST(ServeFactoryTest, NamesRoundTripThroughIsKnown) {
  for (const auto& name : kalman::inverse_strategy_names()) {
    EXPECT_TRUE(kalman::is_inverse_strategy_name(name)) << name;
  }
  EXPECT_FALSE(kalman::is_inverse_strategy_name("gauss-jordan"));
  EXPECT_FALSE(kalman::is_inverse_strategy_name(""));
  EXPECT_FALSE(kalman::is_inverse_strategy_name("GAUSS"));
}

TEST(ServeFactoryTest, FactoryNameSelectsTheExpectedStrategy) {
  const Matrix<double> s = spd(3);
  auto gauss = kalman::make_inverse_strategy<double>("gauss");
  EXPECT_EQ(gauss->name(), "gauss");
  auto cholesky = kalman::make_inverse_strategy<double>("cholesky");
  EXPECT_EQ(cholesky->name(), "cholesky");
  auto qr = kalman::make_inverse_strategy<double>("qr");
  EXPECT_EQ(qr->name(), "qr");
  auto lu = kalman::make_inverse_strategy<double>("lu");
  EXPECT_EQ(lu->name(), "lu");

  StrategyParams<double> p;
  p.newton_iterations = 7;
  auto newton = kalman::make_inverse_strategy<double>("newton", p);
  EXPECT_EQ(newton->name(), "newton-classic(m=7)");

  p.taylor_order = 3;
  auto taylor = kalman::make_inverse_strategy<double>("taylor", p);
  EXPECT_EQ(taylor->name(), "taylor(order=3)");

  auto ifkf = kalman::make_inverse_strategy<double>("ifkf");
  EXPECT_EQ(ifkf->name(), "ifkf");

  p.calc_method = kalman::CalcMethod::kCholesky;
  p.interleave = {4, 2, kalman::SeedPolicy::kLastCalculated};
  auto interleaved = kalman::make_inverse_strategy<double>("interleaved", p);
  EXPECT_NE(interleaved->name().find("cholesky/newton"), std::string::npos);

  StrategyParams<double> preloaded = params_for("sskf", s);
  auto sskf = kalman::make_inverse_strategy<double>("sskf", preloaded);
  EXPECT_EQ(sskf->name(), "sskf-inverse(approx=2)");
  auto lite = kalman::make_inverse_strategy<double>("lite", preloaded);
  EXPECT_EQ(lite->name(), "lite");
}

TEST(ServeFactoryTest, UnknownNameIsACleanError) {
  try {
    kalman::make_inverse_strategy<double>("definitely-not-a-strategy");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("definitely-not-a-strategy"), std::string::npos);
    // The error should teach the caller the valid vocabulary.
    EXPECT_NE(what.find("gauss"), std::string::npos);
    EXPECT_NE(what.find("interleaved"), std::string::npos);
  }
}

TEST(ServeFactoryTest, TypedSpecBuildsEveryKind) {
  const Matrix<double> s = spd(4);
  const Matrix<double> identity = Matrix<double>::identity(4);
  for (const auto& name : kalman::inverse_strategy_names()) {
    SCOPED_TRACE(name);
    kalman::StrategySpec spec = kalman::StrategySpec::parse(name);
    if (name == "newton") spec.newton_iterations = 40;
    kalman::StrategyMatrices<double> matrices;
    if (spec.kind == kalman::StrategyKind::kLite ||
        spec.kind == kalman::StrategyKind::kSskf) {
      matrices.preloaded_inverse = linalg::invert_gauss(s);
    }
    auto strategy = kalman::make_inverse_strategy<double>(spec, matrices);
    ASSERT_NE(strategy, nullptr);
    const Matrix<double> inv = strategy->invert(s, 0);
    Matrix<double> product;
    linalg::multiply_into(product, s, inv);
    product -= identity;
    EXPECT_LT(linalg::frobenius_norm(product), 0.7);
  }
}

TEST(ServeFactoryTest, StringOverloadMatchesTypedSpec) {
  // The historical string overload is a thin wrapper over the typed API:
  // for every vocabulary name both paths must construct the same strategy
  // (observable through name(), which encodes the strategy's parameters).
  const Matrix<double> s = spd(4);
  for (const auto& name : kalman::inverse_strategy_names()) {
    SCOPED_TRACE(name);
    auto via_string =
        kalman::make_inverse_strategy<double>(name, params_for(name, s));

    kalman::StrategySpec spec = kalman::StrategySpec::parse(name);
    const StrategyParams<double> params = params_for(name, s);
    spec.calc_method = params.calc_method;
    spec.calc_freq = params.interleave.calc_freq;
    spec.approx = params.interleave.approx;
    spec.policy = params.interleave.policy;
    spec.newton_iterations = params.newton_iterations;
    spec.taylor_order = params.taylor_order;
    spec.ifkf_iterations = params.ifkf_iterations;
    kalman::StrategyMatrices<double> matrices;
    matrices.r = params.r;
    matrices.preloaded_inverse = params.preloaded_inverse;
    auto via_spec = kalman::make_inverse_strategy<double>(spec, matrices);

    EXPECT_EQ(via_string->name(), via_spec->name());
  }
}

TEST(ServeFactoryTest, FormatStringCarriesItsOwnParameters) {
  // A full format() string round-trips through the string overload with
  // the embedded argument list winning over the legacy params struct.
  StrategyParams<double> ignored;
  ignored.newton_iterations = 99;
  auto newton =
      kalman::make_inverse_strategy<double>("newton(m=7)", ignored);
  EXPECT_EQ(newton->name(), "newton-classic(m=7)");

  auto interleaved = kalman::make_inverse_strategy<double>(
      "interleaved(calc=cholesky,calc_freq=4,approx=2,policy=0)");
  EXPECT_NE(interleaved->name().find("cholesky/newton"), std::string::npos);
}

TEST(ServeFactoryTest, TypedSpecRejectsMissingPreload) {
  kalman::StrategySpec lite;
  lite.kind = kalman::StrategyKind::kLite;
  EXPECT_THROW(kalman::make_inverse_strategy<double>(lite),
               std::invalid_argument);
  kalman::StrategySpec sskf;
  sskf.kind = kalman::StrategyKind::kSskf;
  EXPECT_THROW(kalman::make_inverse_strategy<double>(sskf),
               std::invalid_argument);
}

TEST(ServeFactoryTest, PreloadRequiringNamesRejectEmptyMatrix) {
  EXPECT_THROW(kalman::make_inverse_strategy<double>("lite"),
               std::invalid_argument);
  EXPECT_THROW(kalman::make_inverse_strategy<double>("sskf"),
               std::invalid_argument);
}

TEST(ServeFactoryTest, WorksForFloatToo) {
  linalg::Rng rng(5);
  const Matrix<float> s =
      linalg::random_spd<double>(3, rng, 2.0).cast<float>();
  auto strategy = kalman::make_inverse_strategy<float>("gauss");
  const Matrix<float> inv = strategy->invert(s, 0);
  Matrix<float> product;
  linalg::multiply_into(product, s, inv);
  product -= Matrix<float>::identity(3);
  EXPECT_LT(linalg::frobenius_norm(product), 1e-3);
}

}  // namespace
}  // namespace kalmmind
