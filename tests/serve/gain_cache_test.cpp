// GainSchedule / GainScheduleCache: memoized gain trajectories shared
// across same-config sessions.  Cache mechanics (hit/miss/LRU eviction,
// ref-count survival), window fall-out, bit-identity of entries against a
// solo filter's gains, and the concurrent warm-up path the tier-1 TSan
// rerun exercises.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "kalman/gain_schedule.hpp"
#include "../kalman/kalman_test_util.hpp"

namespace kalmmind::serve {
namespace {

using kalman::FilterConfigD;
using kalman::GainSchedule;
using kalman::GainScheduleCache;

FilterConfigD interleaved_config(std::size_t z_dim = 4,
                                 std::uint64_t seed = 123) {
  FilterConfigD cfg;
  cfg.model = testing::small_model(z_dim, seed);
  cfg.strategy.kind = kalman::StrategyKind::kInterleaved;
  cfg.strategy.calc_freq = 3;
  cfg.strategy.approx = 2;
  cfg.strategy.policy = kalman::SeedPolicy::kPreviousIteration;
  return cfg;
}

TEST(ServeGainCacheTest, AcquireSharesOneScheduleAndCountsHits) {
  GainScheduleCache cache(/*capacity=*/4);
  const FilterConfigD cfg = interleaved_config();

  auto first = cache.acquire(cfg);
  ASSERT_NE(first, nullptr);
  auto second = cache.acquire(cfg);
  EXPECT_EQ(first.get(), second.get());  // same memoized schedule

  const GainScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ServeGainCacheTest, DifferentConfigsGetDifferentSchedules) {
  GainScheduleCache cache(/*capacity=*/4);
  const FilterConfigD a = interleaved_config(4, 1);
  FilterConfigD b = a;
  b.strategy.calc_freq = 5;  // different datapath, same model

  auto sa = cache.acquire(a);
  auto sb = cache.acquire(b);
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  EXPECT_NE(sa.get(), sb.get());
  EXPECT_NE(sa->fingerprint(), sb->fingerprint());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(ServeGainCacheTest, LruEvictionDropsTheColdestSchedule) {
  GainScheduleCache cache(/*capacity=*/2);
  const FilterConfigD a = interleaved_config(4, 1);
  const FilterConfigD b = interleaved_config(4, 2);
  const FilterConfigD c = interleaved_config(4, 3);

  auto sa = cache.acquire(a);
  (void)cache.acquire(b);
  (void)cache.acquire(a);  // refresh a: b is now the LRU victim
  (void)cache.acquire(c);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);

  // a survived the eviction round...
  const std::uint64_t hits_before = cache.stats().hits;
  auto sa2 = cache.acquire(a);
  EXPECT_EQ(sa.get(), sa2.get());
  EXPECT_EQ(cache.stats().hits, hits_before + 1);

  // ...and b was the one dropped: re-acquiring is a fresh miss.
  const std::uint64_t misses_before = cache.stats().misses;
  (void)cache.acquire(b);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(ServeGainCacheTest, EvictedScheduleStaysValidForHolders) {
  GainScheduleCache cache(/*capacity=*/1);
  const FilterConfigD a = interleaved_config(4, 1);
  const FilterConfigD b = interleaved_config(4, 2);

  std::shared_ptr<GainSchedule> held = cache.acquire(a);
  ASSERT_NE(held, nullptr);
  const auto entry_before = held->at(5);
  ASSERT_NE(entry_before, nullptr);

  (void)cache.acquire(b);  // capacity 1: evicts a
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The holder's schedule keeps working and keeps its computed entries.
  const auto entry_after = held->at(5);
  ASSERT_NE(entry_after, nullptr);
  EXPECT_EQ(entry_before.get(), entry_after.get());
  EXPECT_NE(held->at(9), nullptr);  // can still extend past eviction

  // A later acquire(a) rebuilds rather than resurrecting the evicted one.
  auto rebuilt = cache.acquire(a);
  EXPECT_NE(rebuilt.get(), held.get());
}

TEST(ServeGainCacheTest, EntriesMatchSoloFilterBitForBit) {
  const FilterConfigD cfg = interleaved_config(5, 77);
  GainSchedule schedule(cfg);

  // The schedule replays the filter's exact kernel sequence: its P_n must
  // equal the solo filter's posterior covariance bit for bit, and stepping
  // the state through the schedule's K_n must land on the solo state.
  kalman::KalmanFilter<double> solo = cfg.make_filter();
  const auto zs = testing::simulate_measurements(cfg.model, 30);
  linalg::Vector<double> x = cfg.model.x0;
  linalg::Vector<double> xp, hx, corr;
  for (std::size_t n = 0; n < zs.size(); ++n) {
    solo.step(zs[n]);
    const auto entry = schedule.at(n);
    ASSERT_NE(entry, nullptr);
    for (std::size_t i = 0; i < entry->p_after.rows(); ++i) {
      for (std::size_t j = 0; j < entry->p_after.cols(); ++j) {
        ASSERT_EQ(entry->p_after(i, j), solo.covariance()(i, j))
            << "P step " << n;
      }
    }
    linalg::multiply_into(xp, cfg.model.f, x);
    linalg::multiply_into(hx, cfg.model.h, xp);
    linalg::Vector<double> nu = zs[n];
    for (std::size_t i = 0; i < nu.size(); ++i) nu[i] -= hx[i];
    linalg::multiply_into(corr, entry->k, nu);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = xp[i] + corr[i];
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(x[i], solo.state()[i]) << "x step " << n;
    }
  }
}

TEST(ServeGainCacheTest, WindowSlidesAndOldEntriesFallOut) {
  const FilterConfigD cfg = interleaved_config();
  GainSchedule schedule(cfg, /*window=*/4);

  ASSERT_NE(schedule.at(9), nullptr);  // extends through iteration 9
  EXPECT_EQ(schedule.computed(), 10u);
  EXPECT_EQ(schedule.base(), 6u);  // only [6, 10) resident

  EXPECT_EQ(schedule.at(5), nullptr);  // slid out: consumer must fall out
  EXPECT_EQ(schedule.at(0), nullptr);
  ASSERT_NE(schedule.at(6), nullptr);   // oldest resident
  ASSERT_NE(schedule.at(12), nullptr);  // ahead: computed on demand
  EXPECT_EQ(schedule.base(), 9u);
}

TEST(ServeGainCacheTest, ConcurrentWarmUpYieldsOneTrajectory) {
  GainScheduleCache cache(/*capacity=*/4);
  const FilterConfigD cfg = interleaved_config();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kSteps = 64;

  // All threads race acquire() + at() over the same range; every observer
  // must see the same shared entries (TSan guards the synchronization).
  std::vector<std::shared_ptr<const GainSchedule::Entry>> seen(
      kThreads * kSteps);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto schedule = cache.acquire(cfg);
      if (!schedule) return;  // checked via stats + seen[] on the main thread
      for (std::size_t n = 0; n < kSteps; ++n) {
        seen[t * kSteps + n] = schedule->at(n);
      }
    });
  }
  for (auto& th : threads) th.join();

  const GainScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // exactly one thread built the schedule
  EXPECT_EQ(stats.hits, kThreads - 1);
  for (std::size_t n = 0; n < kSteps; ++n) ASSERT_NE(seen[n], nullptr);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t n = 0; n < kSteps; ++n) {
      ASSERT_EQ(seen[t * kSteps + n].get(), seen[n].get())
          << "thread " << t << " step " << n;
    }
  }
}

#if defined(KALMMIND_FAULTS)
// Two different configs forced onto one cache key: the ==-verification must
// refuse to serve the wrong schedule (nullptr, counted as a collision, and
// journaled) rather than silently decoding with another filter's gains.
TEST(ServeGainCacheTest, InjectedFingerprintCollisionIsRefusedAndCounted) {
  GainScheduleCache cache(4);
  const FilterConfigD a = interleaved_config(4, 123);
  FilterConfigD b = interleaved_config(4, 123);
  b.strategy.calc_freq = 5;  // genuinely different trajectory

  auto sa = cache.acquire(a);
  ASSERT_NE(sa, nullptr);

  // Force b to resolve to a's key: a verified collision, not a hit.
  cache.fault_force_key(sa->fingerprint());
  auto sb = cache.acquire(b);
  EXPECT_EQ(sb, nullptr);

  const GainScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.collisions, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // Collisions self-heal once real fingerprints are back.
  cache.clear_fault_forced_key();
  auto sb2 = cache.acquire(b);
  ASSERT_NE(sb2, nullptr);
  EXPECT_NE(sb2->fingerprint(), sa->fingerprint());
}
#endif  // KALMMIND_FAULTS

}  // namespace
}  // namespace kalmmind::serve
