// Serve-layer self-healing (serve/session.hpp): the decode guard that keeps
// diverged steps out of the latency percentiles, quarantine + bounded
// exponential-backoff restarts, and deadline-driven degradation to the
// cheap constant-gain strategy with automatic recovery.  Suite names start
// with "Serve" on purpose: scripts/tier1.sh re-runs ^Serve|^Telemetry under
// TSan.
#include <cmath>
#include <cstdlib>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kalman/factory.hpp"
#include "kalman/filter.hpp"
#include "serve/serve.hpp"
#include "../kalman/kalman_test_util.hpp"
#if defined(KALMMIND_FAULTS)
#include "testing/fault_injection.hpp"
#endif

namespace kalmmind::serve {
namespace {

using linalg::Vector;

SessionConfig healing_config(const kalman::KalmanModel<double>& model) {
  SessionConfig cfg;
  cfg.filter.model = model;
  cfg.filter.strategy.kind = kalman::StrategyKind::kInterleaved;
  cfg.filter.strategy.calc_freq = 3;
  cfg.filter.strategy.approx = 2;
  cfg.filter.strategy.policy = kalman::SeedPolicy::kPreviousIteration;
  cfg.queue_capacity = 1024;
  cfg.self_healing.enabled = true;
  cfg.self_healing.max_restarts = 2;
  cfg.self_healing.backoff_initial_bins = 1;
  cfg.self_healing.backoff_max_bins = 8;
  return cfg;
}

Vector<double> nan_bin(std::size_t z_dim) {
  Vector<double> z(z_dim);
  for (std::size_t i = 0; i < z_dim; ++i) {
    z[i] = std::numeric_limits<double>::quiet_NaN();
  }
  return z;
}

void drain_manual(DecodeServer& server) {
  while (server.poll() > 0) {
  }
}

void expect_all_finite(const std::vector<Vector<double>>& states) {
  for (std::size_t n = 0; n < states.size(); ++n) {
    for (std::size_t d = 0; d < states[n].size(); ++d) {
      EXPECT_TRUE(std::isfinite(states[n][d])) << "step " << n << " dim " << d;
    }
  }
}

TEST(ServeSelfHealingTest, ConfigRejectsDegenerateBackoffAndRecovery) {
  const auto model = testing::small_model(4);
  DecodeServer server({ServerOptions::kManual, 8});
  Status status;

  SessionConfig bad = healing_config(model);
  bad.self_healing.backoff_initial_bins = 0;
  EXPECT_EQ(server.open_session(bad, &status), DecodeServer::kInvalidSession);
  EXPECT_FALSE(status.ok());

  bad = healing_config(model);
  bad.self_healing.backoff_max_bins = 0;  // < initial
  EXPECT_EQ(server.open_session(bad, &status), DecodeServer::kInvalidSession);
  EXPECT_FALSE(status.ok());

  bad = healing_config(model);
  bad.self_healing.degrade_after_misses = 3;
  bad.self_healing.recover_after_hits = 0;
  EXPECT_EQ(server.open_session(bad, &status), DecodeServer::kInvalidSession);
  EXPECT_FALSE(status.ok());

  EXPECT_NE(server.open_session(healing_config(model), &status),
            DecodeServer::kInvalidSession);
  EXPECT_TRUE(status.ok());
}

TEST(ServeSelfHealingTest, DivergedSessionIsQuarantinedThenRestarted) {
  const auto model = testing::small_model(4);
  const SessionConfig cfg = healing_config(model);
  const auto zs = testing::simulate_measurements(model, 4);

  DecodeServer server({ServerOptions::kManual, 8});
  const SessionId id = server.open_session(cfg);
  ASSERT_NE(id, DecodeServer::kInvalidSession);

  // clean | NaN (diverges) | clean (absorbed by backoff) | clean, clean
  // (decoded by the restarted filter, from a fresh x0/P0).
  server.submit(id, zs[0]);
  server.submit(id, nan_bin(4));
  server.submit(id, zs[1]);
  server.submit(id, zs[2]);
  server.submit(id, zs[3]);
  drain_manual(server);

  const SessionStatsSnapshot st = server.session_stats(id);
  EXPECT_EQ(st.state, SessionState::kHealthy);
  EXPECT_EQ(st.steps, 3u);  // zs[0], zs[2], zs[3]
  EXPECT_EQ(st.invalid_steps, 1u);
  EXPECT_EQ(st.quarantine_dropped, 1u);  // zs[1] consumed as backoff
  EXPECT_EQ(st.restarts, 1u);

  // The post-restart decode starts over from the initial filter state.
  kalman::KalmanFilter<double> fresh = cfg.filter.make_filter();
  const auto trajectory = server.trajectory(id);
  ASSERT_EQ(trajectory.size(), 3u);
  expect_all_finite(trajectory);
  const Vector<double> first = fresh.step(zs[0]);
  for (std::size_t d = 0; d < first.size(); ++d) {
    EXPECT_EQ(trajectory[0][d], first[d]);
  }
  fresh.reset();
  const Vector<double> restarted = fresh.step(zs[2]);
  for (std::size_t d = 0; d < restarted.size(); ++d) {
    EXPECT_EQ(trajectory[1][d], restarted[d]);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.total_invalid_steps, 1u);
  EXPECT_EQ(stats.total_restarts, 1u);
  EXPECT_EQ(stats.quarantined_sessions, 0u);
  EXPECT_EQ(stats.failed_sessions, 0u);
  EXPECT_NE(stats.to_string().find("health"), std::string::npos);
}

TEST(ServeSelfHealingTest, RestartsAreBoundedThenSessionFails) {
  const auto model = testing::small_model(4);
  SessionConfig cfg = healing_config(model);
  cfg.self_healing.max_restarts = 1;
  const auto zs = testing::simulate_measurements(model, 3);

  DecodeServer server({ServerOptions::kManual, 8});
  const SessionId id = server.open_session(cfg);
  ASSERT_NE(id, DecodeServer::kInvalidSession);

  // NaN -> quarantine; clean -> backoff; NaN -> restart + diverge again,
  // and with max_restarts=1 exhausted the session fails permanently.
  server.submit(id, nan_bin(4));
  server.submit(id, zs[0]);
  server.submit(id, nan_bin(4));
  server.submit(id, zs[1]);
  server.submit(id, zs[2]);
  drain_manual(server);

  const SessionStatsSnapshot st = server.session_stats(id);
  EXPECT_EQ(st.state, SessionState::kFailed);
  EXPECT_EQ(st.restarts, 1u);  // never exceeds max_restarts
  EXPECT_EQ(st.invalid_steps, 2u);
  EXPECT_EQ(st.steps, 0u);
  EXPECT_EQ(st.quarantine_dropped, 3u);  // backoff bin + 2 post-failure bins
  EXPECT_TRUE(server.trajectory(id).empty());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed_sessions, 1u);
  EXPECT_EQ(stats.total_restarts, 1u);

  // A healthy neighbor session is completely unaffected.
  const SessionId ok = server.open_session(healing_config(model));
  for (const auto& z : zs) server.submit(ok, z);
  drain_manual(server);
  EXPECT_EQ(server.session_stats(ok).steps, 3u);
  EXPECT_EQ(server.session_stats(ok).state, SessionState::kHealthy);
}

TEST(ServeSelfHealingTest, InvalidStepsNeverReachLatencyStats) {
  // The Status guard applies even with self-healing off: a NaN-poisoned
  // filter keeps producing invalid steps, and none of them may pollute the
  // latency recorder, the trajectory, or the timing rows.
  const auto model = testing::small_model(4);
  SessionConfig cfg = healing_config(model);
  cfg.self_healing.enabled = false;
  const auto zs = testing::simulate_measurements(model, 4);

  DecodeServer server({ServerOptions::kManual, 8});
  const SessionId id = server.open_session(cfg);
  server.submit(id, zs[0]);
  server.submit(id, zs[1]);
  server.submit(id, nan_bin(4));  // poisons the filter state for good
  server.submit(id, zs[2]);
  server.submit(id, zs[3]);
  drain_manual(server);

  const SessionStatsSnapshot st = server.session_stats(id);
  EXPECT_EQ(st.state, SessionState::kHealthy);  // no healing, no quarantine
  EXPECT_EQ(st.steps, 2u);
  EXPECT_EQ(st.invalid_steps, 3u);
  EXPECT_EQ(st.restarts, 0u);
  EXPECT_EQ(server.trajectory(id).size(), 2u);
  EXPECT_EQ(server.timings(id).size(), 2u);
  expect_all_finite(server.trajectory(id));

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.step_latency.samples, 2u);
  EXPECT_EQ(stats.total_steps, 2u);
  EXPECT_EQ(stats.total_invalid_steps, 3u);
}

#if defined(KALMMIND_FAULTS)

TEST(ServeSelfHealingTest, DeadlineMissesDegradeThenRecoveryRestores) {
  const auto model = testing::small_model(4);
  SessionConfig cfg = healing_config(model);
  cfg.deadline_s = 0.01;
  cfg.self_healing.degrade_after_misses = 3;
  cfg.self_healing.recover_after_hits = 2;
  const auto zs = testing::simulate_measurements(model, 8);

  Session session(1, cfg);
  // Deterministic deadline outcomes: pretend every step took 1 s.
  session.fault_override_step_seconds(1.0);
  for (int n = 0; n < 3; ++n) {
    session.enqueue(zs[n]);
    EXPECT_EQ(session.step_pending(1), 1u);
  }
  EXPECT_EQ(session.state(), SessionState::kDegraded);
  EXPECT_EQ(session.stats().degradations, 1u);
  EXPECT_EQ(session.stats().deadline_misses, 3u);

  // Degraded decode keeps flowing (constant-gain strategy), carrying the
  // state estimate across the swap.
  session.enqueue(zs[3]);
  session.fault_override_step_seconds(0.0);  // now every step hits
  EXPECT_EQ(session.step_pending(1), 1u);
  EXPECT_EQ(session.state(), SessionState::kDegraded);  // 1 hit < 2

  session.enqueue(zs[4]);
  EXPECT_EQ(session.step_pending(1), 1u);
  EXPECT_EQ(session.state(), SessionState::kHealthy);  // restored

  session.enqueue(zs[5]);
  EXPECT_EQ(session.step_pending(1), 1u);
  const SessionStatsSnapshot st = session.stats();
  EXPECT_EQ(st.steps, 6u);
  EXPECT_EQ(st.degradations, 1u);
  EXPECT_EQ(st.invalid_steps, 0u);
  expect_all_finite(session.trajectory());
}

TEST(ServeSelfHealingTest, DegradedSessionThatDivergesRestartsOnOriginal) {
  const auto model = testing::small_model(4);
  SessionConfig cfg = healing_config(model);
  cfg.deadline_s = 0.01;
  cfg.self_healing.degrade_after_misses = 2;
  cfg.self_healing.recover_after_hits = 2;
  const auto zs = testing::simulate_measurements(model, 5);

  Session session(1, cfg);
  session.fault_override_step_seconds(1.0);
  for (int n = 0; n < 2; ++n) {
    session.enqueue(zs[n]);
    session.step_pending(1);
  }
  ASSERT_EQ(session.state(), SessionState::kDegraded);

  // Divergence while degraded: quarantine restores the original strategy
  // before the restart, then the backoff drains and the session decodes
  // again — healthy, not degraded.
  session.fault_override_step_seconds(-1.0);  // real timing again
  session.enqueue(nan_bin(4));
  session.enqueue(zs[2]);  // absorbed by the backoff
  session.enqueue(zs[3]);  // decoded by the restarted session
  session.step_pending(8);

  EXPECT_EQ(session.state(), SessionState::kHealthy);
  const SessionStatsSnapshot st = session.stats();
  EXPECT_EQ(st.restarts, 1u);
  EXPECT_EQ(st.degradations, 1u);
  EXPECT_EQ(st.invalid_steps, 1u);
  EXPECT_EQ(st.steps, 3u);  // zs[0], zs[1], zs[3]
  expect_all_finite(session.trajectory());

  // The post-restart decode matches a fresh filter on the original
  // (non-degraded) strategy exactly.
  kalman::KalmanFilter<double> fresh = cfg.filter.make_filter();
  const Vector<double> expected = fresh.step(zs[3]);
  const auto trajectory = session.trajectory();
  ASSERT_EQ(trajectory.size(), 3u);
  for (std::size_t d = 0; d < expected.size(); ++d) {
    EXPECT_EQ(trajectory[2][d], expected[d]);
  }
}

TEST(ServeChaosTest, SeededFaultStormNeverProducesNonFiniteOutput) {
  // The soak scripts/chaos.sh loops: a seeded storm of measurement faults
  // against self-healing sessions with filter-level health enabled.  The
  // invariants are absolute — every recorded state finite, restarts
  // bounded, stats consistent — for any seed (KALMMIND_CHAOS_SEED).
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("KALMMIND_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
    if (seed == 0) seed = 1;
  }
  SCOPED_TRACE("KALMMIND_CHAOS_SEED=" + std::to_string(seed));

  const auto model = testing::small_model(6);
  SessionConfig cfg = healing_config(model);
  cfg.filter.strategy.calc_freq = 4;
  cfg.filter.strategy.approx = 1;
  cfg.filter.options.health.enabled = true;
  cfg.filter.options.health.innovation_gate_sigma = 8.0;
  cfg.self_healing.max_restarts = 10;

  testing::FaultInjector injector(seed);
  DecodeServer server({ServerOptions::kManual, 4});
  constexpr std::size_t kSessions = 3;
  constexpr std::size_t kSteps = 80;
  std::vector<SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    ids.push_back(server.open_session(cfg));
    ASSERT_NE(ids.back(), DecodeServer::kInvalidSession);
  }

  for (std::size_t s = 0; s < kSessions; ++s) {
    auto zs = testing::simulate_measurements(model, kSteps, 500 + s);
    for (std::size_t n = 0; n < kSteps; ++n) {
      const double roll = injector.next_unit();
      if (roll < 0.05) {
        testing::FaultInjector::nan_spike(zs[n], injector.next_index(6));
      } else if (roll < 0.10) {
        testing::FaultInjector::dropout(zs[n], injector.next_index(6),
                                        1 + injector.next_index(3));
      } else if (roll < 0.15) {
        testing::FaultInjector::saturate(zs[n], injector.next_index(6),
                                         injector.next_unit() < 0.5 ? 1e9
                                                                    : -1e9);
      } else if (roll < 0.17) {
        // Raw IEEE-754 upset on one channel, any bit.
        testing::FaultInjector::flip_bit(zs[n][injector.next_index(6)],
                                         unsigned(injector.next_index(64)));
      }
      server.submit(ids[s], zs[n]);
    }
  }
  drain_manual(server);

  std::size_t decoded = 0;
  for (const SessionId id : ids) {
    expect_all_finite(server.trajectory(id));
    const SessionStatsSnapshot st = server.session_stats(id);
    EXPECT_LE(st.restarts, cfg.self_healing.max_restarts);
    EXPECT_EQ(st.queue_depth, 0u);
    EXPECT_EQ(st.steps, server.trajectory(id).size());
    decoded += st.steps;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.total_steps, decoded);
  EXPECT_EQ(stats.step_latency.samples, decoded);
  EXPECT_FALSE(stats.to_string().empty());
}

#endif  // KALMMIND_FAULTS

}  // namespace
}  // namespace kalmmind::serve
