// SessionSnapshot: the versioned, self-framing binary codec plus
// DecodeServer checkpoint/restore.  Round-trip fidelity, a corrupted-frame
// corpus (every malformed frame must come back as a Status, never UB), and
// the tentpole property: a checkpointed session restored on a fresh server
// continues bit-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "kalman/factory.hpp"
#include "kalman/filter.hpp"
#include "serve/serve.hpp"
#include "../kalman/kalman_test_util.hpp"

namespace kalmmind::serve {
namespace {

using linalg::Vector;

SessionConfig interleaved_config(const kalman::KalmanModel<double>& model) {
  SessionConfig cfg;
  cfg.filter.model = model;
  cfg.filter.strategy.kind = kalman::StrategyKind::kInterleaved;
  cfg.filter.strategy.calc_freq = 3;
  cfg.filter.strategy.approx = 2;
  cfg.filter.strategy.policy = kalman::SeedPolicy::kPreviousIteration;
  cfg.queue_capacity = 1024;
  return cfg;
}

SessionSnapshot sample_snapshot() {
  SessionSnapshot snap;
  snap.config_fingerprint = 0xdeadbeefcafef00dull;
  snap.iteration = 137;
  snap.x = {1.5, -2.25, 3.0e-17, 0.0, -0.0, 1e300};
  snap.health_rung = 1;
  snap.backoff_remaining = 3;
  snap.steps = 137;
  snap.batched_steps = 120;
  snap.deadline_misses = 2;
  snap.invalid_steps = 1;
  snap.restarts = 1;
  snap.degradations = 0;
  snap.quarantine_dropped = 4;
  snap.rejected = 5;
  snap.dropped = 6;
  snap.discarded = 7;
  snap.sum_step_s = 0.125;
  snap.worst_step_s = 0.001953125;
  snap.recorded_states = 137;
  return snap;
}

TEST(ServeSnapshotTest, EncodeDecodeRoundTripsEveryField) {
  const SessionSnapshot snap = sample_snapshot();
  const std::vector<std::uint8_t> frame = encode(snap);
  ASSERT_GE(frame.size(), kSnapshotHeaderBytes + kSnapshotChecksumBytes);

  SessionSnapshot out;
  const Status s = decode(frame, &out);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(out.config_fingerprint, snap.config_fingerprint);
  EXPECT_EQ(out.iteration, snap.iteration);
  ASSERT_EQ(out.x.size(), snap.x.size());
  for (std::size_t i = 0; i < snap.x.size(); ++i) {
    // Bit-exact doubles, including -0.0 and subnormal-adjacent values.
    EXPECT_EQ(std::memcmp(&out.x[i], &snap.x[i], sizeof(double)), 0) << i;
  }
  EXPECT_EQ(out.health_rung, snap.health_rung);
  EXPECT_EQ(out.backoff_remaining, snap.backoff_remaining);
  EXPECT_EQ(out.steps, snap.steps);
  EXPECT_EQ(out.batched_steps, snap.batched_steps);
  EXPECT_EQ(out.deadline_misses, snap.deadline_misses);
  EXPECT_EQ(out.invalid_steps, snap.invalid_steps);
  EXPECT_EQ(out.restarts, snap.restarts);
  EXPECT_EQ(out.degradations, snap.degradations);
  EXPECT_EQ(out.quarantine_dropped, snap.quarantine_dropped);
  EXPECT_EQ(out.rejected, snap.rejected);
  EXPECT_EQ(out.dropped, snap.dropped);
  EXPECT_EQ(out.discarded, snap.discarded);
  EXPECT_EQ(out.sum_step_s, snap.sum_step_s);
  EXPECT_EQ(out.worst_step_s, snap.worst_step_s);
  EXPECT_EQ(out.recorded_states, snap.recorded_states);
}

// The corrupted-frame corpus: every mangled frame must be rejected with a
// Status — no crash, no garbage snapshot, no UB (ASan/UBSan cover this
// file in the sanitizer CI lanes).
TEST(ServeSnapshotTest, CorruptedFrameCorpusIsRejectedNotUB) {
  const std::vector<std::uint8_t> good = encode(sample_snapshot());
  SessionSnapshot out;

  struct Case {
    const char* name;
    std::vector<std::uint8_t> frame;
  };
  std::vector<Case> corpus;
  corpus.push_back({"empty", {}});
  corpus.push_back({"single_byte", {0x4b}});
  corpus.push_back(
      {"header_only", std::vector<std::uint8_t>(
                          good.begin(), good.begin() + kSnapshotHeaderBytes)});
  {
    auto f = good;
    f[0] = 'X';  // magic
    corpus.push_back({"bad_magic", f});
  }
  {
    auto f = good;
    f[4] = 0x7f;  // version -> unsupported
    corpus.push_back({"unknown_version", f});
  }
  {
    auto f = good;
    f.resize(f.size() - 1);  // truncated checksum
    corpus.push_back({"truncated_checksum", f});
  }
  {
    auto f = good;
    f.resize(f.size() - kSnapshotChecksumBytes - 3);  // truncated payload
    corpus.push_back({"truncated_payload", f});
  }
  {
    auto f = good;
    f.push_back(0);  // trailing junk
    corpus.push_back({"trailing_bytes", f});
  }
  {
    auto f = good;
    f[8] = 0xff;  // payload_len disagrees with the frame
    corpus.push_back({"length_mismatch", f});
  }
  {
    auto f = good;
    // x_dim field (first payload u32 after fingerprint+iteration): blow it
    // past kSnapshotMaxStateDim, then re-seal the checksum so the
    // allocation guard — not the checksum — is what rejects the frame.
    const std::size_t at = kSnapshotHeaderBytes + 8 + 8;
    f[at] = f[at + 1] = f[at + 2] = f[at + 3] = 0xff;
    const std::uint64_t ck = snapshot_detail::checksum(
        f.data(), f.size() - kSnapshotChecksumBytes);
    for (std::size_t i = 0; i < kSnapshotChecksumBytes; ++i)
      f[f.size() - kSnapshotChecksumBytes + i] =
          std::uint8_t(ck >> (8 * i));
    corpus.push_back({"oversized_state_dim", f});
  }

  for (const auto& c : corpus) {
    const Status s = decode(c.frame, &out);
    EXPECT_FALSE(s.ok()) << c.name;
    EXPECT_NE(s.message(), std::string()) << c.name;
  }
}

// Any single corrupted byte anywhere in the frame is caught (the trailing
// FNV-1a checksum covers header and payload; flips inside the checksum
// itself mismatch trivially).
TEST(ServeSnapshotTest, EverySingleByteFlipIsDetected) {
  const std::vector<std::uint8_t> good = encode(sample_snapshot());
  SessionSnapshot out;
  for (std::size_t i = 0; i < good.size(); ++i) {
    auto f = good;
    f[i] ^= 0x40;
    EXPECT_FALSE(decode(f, &out).ok()) << "byte " << i;
  }
}

TEST(ServeSnapshotTest, DebugJsonNamesTheDurableFields) {
  const std::string json = to_debug_json(sample_snapshot());
  for (const char* key :
       {"\"config_fingerprint\"", "\"iteration\"", "\"x\"",
        "\"health_rung\"", "\"steps\"", "\"discarded\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

// The tentpole property: checkpoint mid-stream, restore on a *different*
// DecodeServer, feed the tail — the combined trajectory is bit-identical
// to one uninterrupted run.  The restore replays nothing: it pulls K at
// exactly the snapshot iteration from the target's gain-schedule cache
// (compute K is measurement-independent, so (config, iteration, x) is the
// entire durable state).
TEST(ServeSnapshotTest, CheckpointRestoreIsBitExactAcrossServers) {
  const auto model = testing::small_model(6);
  const SessionConfig cfg = interleaved_config(model);
  constexpr std::size_t kTotal = 60;
  constexpr std::size_t kCut = 23;  // mid-interleave (calc_freq 3): the
                                    // restore must resume the K pattern
  const auto zs = testing::simulate_measurements(model, kTotal, 42);

  // Uninterrupted reference.
  std::vector<Vector<double>> solo;
  {
    kalman::KalmanFilter<double> filter = cfg.filter.make_filter();
    for (const auto& z : zs) solo.push_back(filter.step(z));
  }

  DecodeServer a({/*workers=*/ServerOptions::kManual});
  Status status;
  const SessionId ida = a.open_session(cfg, &status);
  ASSERT_NE(ida, DecodeServer::kInvalidSession) << status.message();
  for (std::size_t n = 0; n < kCut; ++n)
    ASSERT_EQ(a.submit(ida, zs[n]), PushResult::kAccepted);
  a.drain();

  SessionSnapshot snap;
  ASSERT_TRUE(a.checkpoint_session(ida, &snap).ok());
  EXPECT_EQ(snap.iteration, kCut);
  EXPECT_EQ(snap.recorded_states, kCut);

  // Ship it through the wire framing, like a real migration would.
  SessionSnapshot shipped;
  ASSERT_TRUE(decode(encode(snap), &shipped).ok());

  DecodeServer b({/*workers=*/ServerOptions::kManual});
  const SessionId idb = b.restore_session(cfg, shipped, &status);
  ASSERT_NE(idb, DecodeServer::kInvalidSession) << status.message();
  for (std::size_t n = kCut; n < kTotal; ++n)
    ASSERT_EQ(b.submit(idb, zs[n]), PushResult::kAccepted);
  b.drain();

  const auto head = a.trajectory(ida);
  const auto tail = b.trajectory(idb);
  ASSERT_EQ(head.size(), kCut);
  ASSERT_EQ(tail.size(), kTotal - kCut);
  for (std::size_t n = 0; n < kTotal; ++n) {
    const auto& got = n < kCut ? head[n] : tail[n - kCut];
    for (std::size_t d = 0; d < got.size(); ++d)
      ASSERT_EQ(got[d], solo[n][d]) << "step " << n << " dim " << d;
  }

  // Carried counters resumed, not reset.
  const auto stats = b.session_stats(idb);
  EXPECT_EQ(stats.steps, kTotal);
}

TEST(ServeSnapshotTest, RestoreRejectsMismatchedSnapshots) {
  const auto model = testing::small_model(6);
  const SessionConfig cfg = interleaved_config(model);
  const auto zs = testing::simulate_measurements(model, 8);

  DecodeServer a({/*workers=*/ServerOptions::kManual});
  const SessionId id = a.open_session(cfg);
  for (const auto& z : zs) ASSERT_EQ(a.submit(id, z), PushResult::kAccepted);
  a.drain();
  SessionSnapshot snap;
  ASSERT_TRUE(a.checkpoint_session(id, &snap).ok());

  DecodeServer b({/*workers=*/ServerOptions::kManual});
  Status status;

  // Different config => different fingerprint.
  SessionConfig other = cfg;
  other.filter.strategy.calc_freq = 5;
  EXPECT_EQ(b.restore_session(other, snap, &status),
            DecodeServer::kInvalidSession);
  EXPECT_FALSE(status.ok());

  // Mangled state dimension.
  SessionSnapshot bad = snap;
  bad.x.push_back(0.0);
  EXPECT_EQ(b.restore_session(cfg, bad, &status),
            DecodeServer::kInvalidSession);
  EXPECT_FALSE(status.ok());

  // Unbatchable config cannot replay bit-exact: refused, not silently
  // degraded.
  SessionConfig nobatch = cfg;
  nobatch.allow_batching = false;
  EXPECT_EQ(b.restore_session(nobatch, snap, &status),
            DecodeServer::kInvalidSession);
  EXPECT_FALSE(status.ok());

  // And the happy path still works on the same server instance.
  EXPECT_NE(b.restore_session(cfg, snap, &status),
            DecodeServer::kInvalidSession)
      << status.message();
}

TEST(ServeSnapshotTest, CheckpointRefusesNonReplayableStreams) {
  const auto model = testing::small_model(4);
  SessionConfig cfg = interleaved_config(model);
  // Health-gated filters take measurement-dependent gain paths: their
  // trajectory is not a pure function of (config, iteration, x).
  cfg.filter.options.health.enabled = true;
  cfg.allow_batching = false;

  DecodeServer server({/*workers=*/ServerOptions::kManual});
  Status status;
  const SessionId id = server.open_session(cfg, &status);
  ASSERT_NE(id, DecodeServer::kInvalidSession) << status.message();
  SessionSnapshot snap;
  EXPECT_FALSE(server.checkpoint_session(id, &snap).ok());
}

}  // namespace
}  // namespace kalmmind::serve
