// Status check() / validate() parity: the non-throwing path must agree
// with the throwing path on every config type, message for message.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>

#include "common/status.hpp"
#include "core/config.hpp"
#include "kalman/filter.hpp"
#include "kalman/model.hpp"
#include "serve/session.hpp"
#include "../kalman/kalman_test_util.hpp"

namespace kalmmind {
namespace {

// check() and validate() must agree: ok <=> no throw, and the thrown
// message equals the Status message.
template <typename Config>
void expect_parity(const Config& config) {
  const Status s = config.check();
  if (s.ok()) {
    EXPECT_NO_THROW(config.validate());
  } else {
    try {
      config.validate();
      FAIL() << "check() failed but validate() did not throw: " << s.message();
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()), std::string(s.message()));
    }
  }
}

TEST(ServeStatusTest, StatusBasics) {
  const Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(bool(ok));
  EXPECT_STREQ(ok.message(), "");

  const Status bad = Status::Invalid("broken");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bool(bad));
  EXPECT_STREQ(bad.message(), "broken");

  const Status defaulted;
  EXPECT_TRUE(defaulted.ok());
}

TEST(ServeStatusTest, KalmanModelParityOnValidModel) {
  const auto m = testing::small_model(4);
  EXPECT_TRUE(m.check().ok());
  expect_parity(m);
}

TEST(ServeStatusTest, KalmanModelParityOnEveryBreakage) {
  const auto good = testing::small_model(4);

  auto broken = good;
  broken.f = linalg::Matrix<double>(3, 2);
  expect_parity(broken);
  EXPECT_FALSE(broken.check().ok());

  broken = good;
  broken.q = linalg::Matrix<double>(1, 1);
  expect_parity(broken);
  EXPECT_FALSE(broken.check().ok());

  broken = good;
  broken.h = linalg::Matrix<double>(4, 3);
  expect_parity(broken);
  EXPECT_FALSE(broken.check().ok());

  broken = good;
  broken.r = linalg::Matrix<double>(2, 4);
  expect_parity(broken);
  EXPECT_FALSE(broken.check().ok());

  broken = good;
  broken.x0 = linalg::Vector<double>(5);
  expect_parity(broken);
  EXPECT_FALSE(broken.check().ok());

  broken = good;
  broken.p0 = linalg::Matrix<double>(2, 3);
  expect_parity(broken);
  EXPECT_FALSE(broken.check().ok());

  kalman::KalmanModel<double> empty;
  expect_parity(empty);
  EXPECT_FALSE(empty.check().ok());
}

TEST(ServeStatusTest, AcceleratorConfigParity) {
  core::AcceleratorConfig good;
  EXPECT_TRUE(good.check().ok());
  expect_parity(good);

  core::AcceleratorConfig zero_dim = good;
  zero_dim.x_dim = 0;
  expect_parity(zero_dim);
  EXPECT_FALSE(zero_dim.check().ok());

  core::AcceleratorConfig zero_chunks = good;
  zero_chunks.chunks = 0;
  expect_parity(zero_chunks);
  EXPECT_FALSE(zero_chunks.check().ok());

  core::AcceleratorConfig bad_policy = good;
  bad_policy.policy = 2;
  expect_parity(bad_policy);
  EXPECT_FALSE(bad_policy.check().ok());
}

TEST(ServeStatusTest, FilterOptionsParity) {
  kalman::FilterOptions options;
  EXPECT_TRUE(options.check().ok());
  expect_parity(options);
  options.joseph_update = true;
  EXPECT_TRUE(options.check().ok());
  expect_parity(options);
}

TEST(ServeStatusTest, CheckIsNoexcept) {
  static_assert(noexcept(std::declval<kalman::KalmanModel<double>>().check()));
  static_assert(noexcept(std::declval<core::AcceleratorConfig>().check()));
  static_assert(noexcept(std::declval<kalman::FilterOptions>().check()));
  static_assert(noexcept(std::declval<serve::SessionConfig>().check()));
}

TEST(ServeStatusTest, SessionConfigCheckCoversItsFields) {
  serve::SessionConfig cfg;
  cfg.filter.model = testing::small_model(4);
  EXPECT_TRUE(cfg.check().ok());

  serve::SessionConfig bad_queue = cfg;
  bad_queue.queue_capacity = 0;
  EXPECT_FALSE(bad_queue.check().ok());

  serve::SessionConfig bad_deadline = cfg;
  bad_deadline.deadline_s = 0.0;
  EXPECT_FALSE(bad_deadline.check().ok());

  serve::SessionConfig bad_strategy = cfg;
  bad_strategy.filter.strategy.kind = kalman::StrategyKind::kNewton;
  bad_strategy.filter.strategy.newton_iterations = 0;
  EXPECT_FALSE(bad_strategy.check().ok());

  serve::SessionConfig missing_preload = cfg;
  missing_preload.filter.strategy.kind = kalman::StrategyKind::kSskf;
  EXPECT_FALSE(missing_preload.check().ok());

  serve::SessionConfig bad_model = cfg;
  bad_model.filter.model.f = linalg::Matrix<double>(1, 2);
  EXPECT_FALSE(bad_model.check().ok());
}

}  // namespace
}  // namespace kalmmind
