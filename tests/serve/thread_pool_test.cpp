// serve::ThreadPool — the reusable pool behind both the DSE sweep and the
// decode server's session scheduling.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/thread_pool.hpp"

namespace kalmmind::serve {
namespace {

TEST(ServeThreadPoolTest, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ServeThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ServeThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ServeThreadPoolTest, ParallelForUsesMultipleThreads) {
  ThreadPool pool(4);
  std::set<std::thread::id> seen;
  std::mutex mu;
  pool.parallel_for(64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GT(seen.size(), 1u);
}

TEST(ServeThreadPoolTest, SingleWorkerPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ServeThreadPoolTest, ParallelForZeroAndOneAreFine) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(1, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ServeThreadPoolTest, DestructorDrainsQueuedJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ServeThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ServeThreadPoolTest, DefaultSizeMatchesHardware) {
  ThreadPool pool;
  EXPECT_EQ(pool.size(),
            std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace
}  // namespace kalmmind::serve
