#include "soc/dma.hpp"

#include <gtest/gtest.h>

#include "soc/memory_map.hpp"

namespace kalmmind::soc {
namespace {

struct DmaFixture : ::testing::Test {
  DmaFixture()
      : noc([] {
          NocParams p;
          p.width = 2;
          p.height = 2;
          return p;
        }()),
        memory([] {
          MemoryParams p;
          p.size_words = 4096;
          return p;
        }()),
        dma(noc, memory, /*accel=*/{1, 1}, /*mem=*/{1, 0},
            /*bytes_per_word=*/4) {}

  Noc noc;
  MainMemory memory;
  DmaEngine dma;
};

TEST_F(DmaFixture, ReadMovesDataAndChargesCycles) {
  double src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  memory.write_block(100, src, 8);
  double dst[8] = {};
  dma.read(100, dst, 8);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(dst[i], src[i]);
  EXPECT_GT(dma.cycles(), 0u);
  EXPECT_EQ(dma.transactions(), 1u);
}

TEST_F(DmaFixture, WriteMovesDataBack) {
  double src[4] = {9, 8, 7, 6};
  dma.write(200, src, 4);
  double check[4] = {};
  memory.read_block(200, check, 4);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(check[i], src[i]);
}

TEST_F(DmaFixture, CyclesAccumulateAcrossTransactions) {
  double buf[16] = {};
  dma.read(0, buf, 16);
  const auto after_one = dma.cycles();
  dma.read(0, buf, 16);
  EXPECT_EQ(dma.cycles(), 2 * after_one);
  EXPECT_EQ(dma.transactions(), 2u);
  dma.reset_accounting();
  EXPECT_EQ(dma.cycles(), 0u);
}

TEST_F(DmaFixture, LargerBurstsCostMoreButAmortize) {
  double buf[1024] = {};
  dma.read(0, buf, 8);
  const auto small = dma.cycles();
  dma.reset_accounting();
  dma.read(0, buf, 1024);
  const auto large = dma.cycles();
  EXPECT_GT(large, small);
  EXPECT_LT(large, 128 * small) << "per-word cost must amortize setup";
}

TEST(MemoryMapTest, SectionsAreContiguousAndDisjoint) {
  MemoryMap map;
  map.x_dim = 6;
  map.z_dim = 46;
  map.iterations = 100;
  map.base = 128;
  EXPECT_EQ(map.f_addr(), 128u);
  EXPECT_EQ(map.q_addr(), map.f_addr() + 36);
  EXPECT_EQ(map.h_addr(), map.q_addr() + 36);
  EXPECT_EQ(map.r_addr(), map.h_addr() + 46 * 6);
  EXPECT_EQ(map.x0_addr(), map.r_addr() + 46 * 46);
  EXPECT_EQ(map.p0_addr(), map.x0_addr() + 6);
  EXPECT_EQ(map.measurements_addr(), map.p0_addr() + 36);
  EXPECT_EQ(map.states_addr(), map.measurements_addr() + 100 * 46);
  EXPECT_EQ(map.final_p_addr(), map.states_addr() + 100 * 6);
  EXPECT_EQ(map.end(), map.final_p_addr() + 36);
}

TEST(MemoryMapTest, ValidateChecksCapacityAndShape) {
  MemoryMap map;
  map.x_dim = 6;
  map.z_dim = 46;
  map.iterations = 100;
  EXPECT_NO_THROW(map.validate(1u << 20));
  EXPECT_THROW(map.validate(100), std::invalid_argument);
  map.iterations = 0;
  EXPECT_THROW(map.validate(1u << 20), std::invalid_argument);
}

}  // namespace
}  // namespace kalmmind::soc
