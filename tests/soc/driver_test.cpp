// The full Linux-driver flow on the simulated SoC: serialize -> configure
// -> start -> interrupt -> read back, plus equivalence with the direct
// library-level accelerator run.
#include <gtest/gtest.h>

#include "../core/core_test_util.hpp"
#include "soc/soc_all.hpp"

namespace kalmmind::soc {
namespace {

using kalmmind::testing::tiny_dataset;

struct SocFixture : ::testing::Test {
  SocFixture() : chip(SocParams{}) {
    accel_id = chip.add_accelerator("kalmmind0", hls::DatapathSpec{},
                                    TileCoord{1, 1});
  }

  core::AcceleratorConfig config() const {
    const auto& ds = tiny_dataset();
    auto cfg = core::AcceleratorConfig::for_run(
        std::uint32_t(ds.model.x_dim()), std::uint32_t(ds.model.z_dim()),
        ds.test_measurements.size());
    cfg.approx = 2;
    cfg.policy = 1;
    return cfg;
  }

  Soc chip;
  std::size_t accel_id = 0;
};

TEST_F(SocFixture, FixedTilesMustBeOnTheMesh) {
  SocParams bad;
  bad.cpu_tile = {9, 9};
  EXPECT_THROW(Soc{bad}, std::invalid_argument);
}

TEST_F(SocFixture, AcceleratorPlacementIsChecked) {
  EXPECT_THROW(chip.add_accelerator("x", hls::DatapathSpec{}, {5, 5}),
               std::invalid_argument);
  EXPECT_THROW(chip.add_accelerator("x", hls::DatapathSpec{}, {0, 0}),
               std::invalid_argument);  // CPU tile
  EXPECT_THROW(chip.add_accelerator("x", hls::DatapathSpec{}, {1, 1}),
               std::invalid_argument);  // occupied by kalmmind0
}

TEST_F(SocFixture, MmioAdvancesTheClock) {
  const auto before = chip.now();
  chip.mmio_write(accel_id, Reg::kApprox, 3);
  EXPECT_GT(chip.now(), before);
  EXPECT_EQ(chip.mmio_read(accel_id, Reg::kApprox), 3u);
}

TEST_F(SocFixture, FullDriverFlowProducesStates) {
  const auto& ds = tiny_dataset();
  EspDriver driver(chip, accel_id);
  auto map = driver.write_invocation(ds.model, ds.test_measurements);
  driver.configure(config());

  auto result = driver.start_and_wait(map);
  EXPECT_GT(result.done_cycle, result.start_cycle);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.energy_j, 0.0);
  EXPECT_GT(result.stats.dma_transactions, 0u);
  EXPECT_EQ(chip.accelerator(accel_id).registers().read(Reg::kStatus),
            kStatusDone);
  EXPECT_FALSE(chip.accelerator(accel_id).irq().pending()) << "acked";

  auto states = driver.read_states(map);
  ASSERT_EQ(states.size(), ds.test_measurements.size());
  for (const auto& x : states)
    for (std::size_t j = 0; j < x.size(); ++j)
      EXPECT_TRUE(std::isfinite(x[j]));
}

TEST_F(SocFixture, SocRunIsBitExactWithDirectAcceleratorRun) {
  const auto& ds = tiny_dataset();
  EspDriver driver(chip, accel_id);
  auto map = driver.write_invocation(ds.model, ds.test_measurements);
  driver.configure(config());
  driver.start_and_wait(map);
  auto soc_states = driver.read_states(map);

  core::Accelerator direct(hls::DatapathSpec{}, config());
  auto direct_run = direct.run(ds.model, ds.test_measurements);
  ASSERT_EQ(soc_states.size(), direct_run.states.size());
  for (std::size_t n = 0; n < soc_states.size(); ++n)
    EXPECT_TRUE(soc_states[n] == direct_run.states[n]) << n;
}

TEST_F(SocFixture, RegisterMapMismatchIsRejected) {
  const auto& ds = tiny_dataset();
  EspDriver driver(chip, accel_id);
  auto map = driver.write_invocation(ds.model, ds.test_measurements);
  auto cfg = config();
  cfg.batches = cfg.batches + 1;  // now chunks*batches != map.iterations
  driver.configure(cfg);
  EXPECT_THROW(driver.start_and_wait(map), std::invalid_argument);
}

TEST_F(SocFixture, WriteInvocationRejectsEmptyMeasurements) {
  EspDriver driver(chip, accel_id);
  EXPECT_THROW(driver.write_invocation(tiny_dataset().model, {}),
               std::invalid_argument);
}

TEST_F(SocFixture, DriverRejectsBadAcceleratorIndex) {
  EXPECT_THROW(EspDriver(chip, 5), std::out_of_range);
}

TEST_F(SocFixture, TwoAcceleratorsNeedALargerMesh) {
  // The default 2x2 mesh is full (CPU, memory, I/O, one accelerator); a
  // 3x2 mesh hosts a second accelerator tile.
  SocParams params;
  params.noc.width = 3;
  Soc big(params);
  big.add_accelerator("gn0", hls::DatapathSpec{}, TileCoord{1, 1});
  hls::DatapathSpec lite;
  lite.calc = hls::CalcUnit::kNone;
  lite.approx = hls::ApproxUnit::kNewton;
  lite.lite = true;
  const auto lite_id = big.add_accelerator("lite0", lite, TileCoord{2, 0});
  EXPECT_EQ(big.accelerator_count(), 2u);
  EXPECT_EQ(big.accelerator(lite_id).name(), "lite0");
}

TEST(SoftwareModelTest, CvaSixIsSlowerAndLowerPowerThanI7) {
  const auto& ds = kalmmind::testing::tiny_dataset();
  auto i7 = run_software_kf(hls::intel_i7_model(), ds.model,
                            ds.test_measurements);
  auto cva6 = run_software_kf(hls::cva6_model(), ds.model,
                              ds.test_measurements);
  EXPECT_GT(cva6.seconds, 100.0 * i7.seconds);
  EXPECT_LT(cva6.power_w, i7.power_w / 100.0);
  // Same functional result (same float32 arithmetic).
  ASSERT_EQ(i7.states.size(), cva6.states.size());
  for (std::size_t n = 0; n < i7.states.size(); ++n)
    EXPECT_TRUE(i7.states[n] == cva6.states[n]);
}

}  // namespace
}  // namespace kalmmind::soc
