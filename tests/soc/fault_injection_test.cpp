// Deterministic fault injection against the SoC surfaces
// (testing/fault_injection.hpp, docs/robustness.md): PLM/main-memory bit
// flips and MMIO register upsets, each detected within one step and
// recovered.  The whole file compiles only under KALMMIND_FAULTS, the same
// gate kalmmind-lint rule R5 enforces in src/.
#if defined(KALMMIND_FAULTS)

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "kalman/factory.hpp"
#include "kalman/filter.hpp"
#include "kalman/reference.hpp"
#include "soc/memory.hpp"
#include "soc/registers.hpp"
#include "testing/fault_injection.hpp"
#include "../kalman/kalman_test_util.hpp"

namespace kalmmind::soc {
namespace {

using kalman::FilterOptions;
using kalman::RecoveryAction;
using linalg::Vector;
using testing::FaultEvent;
using testing::FaultInjector;
using testing::FaultKind;

TEST(SocFaultInjectionTest, SplitmixStreamIsSeedDeterministic) {
  FaultInjector a(1234);
  FaultInjector b(1234);
  FaultInjector c(5678);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    any_diff = any_diff || (va != c.next_u64());
  }
  EXPECT_TRUE(any_diff);

  FaultInjector d(99);
  for (int i = 0; i < 256; ++i) {
    const double u = d.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(d.next_index(7), 7u);
  }
  EXPECT_EQ(d.next_index(0), 0u);  // degenerate range stays in bounds
}

TEST(SocFaultInjectionTest, ScheduledPlanReplaysOnlyMatchingSteps) {
  FaultInjector injector(1);
  injector.schedule({3, FaultKind::kNanSpike, 1});
  injector.schedule({5, FaultKind::kChannelDropout, 0, 62, 1e6, 2});
  injector.schedule({5, FaultKind::kBitFlip, /*addr=*/40, /*bit=*/62});

  Vector<double> z(4);
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = 1.0;

  EXPECT_EQ(injector.corrupt(z, 2), 0u);  // nothing scheduled here
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_EQ(z[i], 1.0);

  EXPECT_EQ(injector.corrupt(z, 3), 1u);
  EXPECT_TRUE(std::isnan(z[1]));
  EXPECT_EQ(z[0], 1.0);

  z[1] = 1.0;
  // The bit-flip event is not a measurement fault: corrupt() skips it and
  // events_at() hands it to the memory owner instead.
  EXPECT_EQ(injector.corrupt(z, 5), 1u);
  EXPECT_EQ(z[0], 0.0);
  EXPECT_EQ(z[1], 0.0);
  const auto flips = injector.events_at(5, FaultKind::kBitFlip);
  ASSERT_EQ(flips.size(), 1u);
  EXPECT_EQ(flips[0].index, 40u);
  EXPECT_EQ(flips[0].bit, 62u);
  EXPECT_TRUE(injector.events_at(5, FaultKind::kRegisterCorruption).empty());
}

TEST(SocFaultInjectionTest, FlipBitIsItsOwnInverse) {
  double word = 3.25;
  FaultInjector::flip_bit(word, 62);
  EXPECT_NE(word, 3.25);
  FaultInjector::flip_bit(word, 62);
  EXPECT_EQ(word, 3.25);
}

TEST(SocFaultInjectionTest, PlmBitFlipDetectedWithinOneStepAndRecovered) {
  // The serve path on silicon: each measurement bin travels main memory ->
  // PLM -> datapath.  An exponent-bit upset in the stored bin must be
  // caught by the filter-level health monitor on the very step that
  // consumes it, and the decode must re-converge on the clean tail.
  const auto model = testing::small_model(4);
  const auto clean = testing::simulate_measurements(model, 60);

  FaultInjector injector(2026);
  constexpr std::size_t kFaultStep = 20;
  constexpr std::size_t kBase = 128;  // bin n lives at kBase + n*z_dim
  const std::size_t z_dim = clean[0].size();
  // Flip the top exponent bit of a word with |v| < 2 (exponent MSB clear):
  // the upset then lands in the huge/non-finite range, the detectable
  // direction.  (|v| >= 2 would collapse toward zero — that containment
  // direction is covered by the dropout gating test in health_test.cpp.)
  std::size_t channel = 0;
  for (std::size_t i = 0; i < z_dim; ++i) {
    if (std::abs(clean[kFaultStep][i]) < std::abs(clean[kFaultStep][channel]))
      channel = i;
  }
  ASSERT_LT(std::abs(clean[kFaultStep][channel]), 2.0);
  injector.schedule({kFaultStep, FaultKind::kBitFlip,
                     kBase + kFaultStep * z_dim + channel, /*bit=*/62});

  MainMemory memory;
  FilterOptions opts;
  opts.health.enabled = true;
  opts.health.innovation_gate_sigma = 8.0;
  kalman::StrategyParams<double> params;
  params.interleave = {3, 2, kalman::SeedPolicy::kPreviousIteration};
  kalman::KalmanFilter<double> filter(
      model, kalman::make_inverse_strategy<double>("interleaved", params),
      opts);

  for (std::size_t n = 0; n < clean.size(); ++n) {
    const std::size_t addr = kBase + n * clean[n].size();
    memory.write_block(addr, &clean[n][0], clean[n].size());
    for (const FaultEvent& e :
         injector.events_at(n, FaultKind::kBitFlip)) {
      memory.flip_word_bit(e.index, e.bit);
    }
    Vector<double> z(clean[n].size());
    memory.read_block(addr, &z[0], z.size());

    const std::size_t faulty_before = filter.health().faulty_steps;
    const Vector<double>& x = filter.step(z);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_TRUE(std::isfinite(x[i])) << "step " << n << " dim " << i;
    }
    if (n == kFaultStep) {
      // A top-exponent flip turns the word into either +/-Inf/NaN (caught
      // pre-update as a non-finite measurement) or an astronomically large
      // finite value (caught by the innovation gate) — both within this
      // step.
      EXPECT_EQ(filter.health().faulty_steps, faulty_before + 1);
      EXPECT_GE(filter.health().total(RecoveryAction::kSkipMeasurement) +
                    filter.health().total(RecoveryAction::kGateChannels),
                1u);
    } else {
      EXPECT_EQ(filter.health().faulty_steps, faulty_before);
    }
  }
  EXPECT_EQ(filter.health().escalation_level, 0u);

  const auto ref = kalman::run_reference(model, clean);
  for (std::size_t i = 0; i < filter.state().size(); ++i) {
    EXPECT_NEAR(filter.state()[i], ref.states.back()[i], 2e-2) << "dim " << i;
  }
}

TEST(SocFaultInjectionTest, RegisterUpsetDetectedByScrubAndRepaired) {
  // Driver-style shadow scrub: software keeps the intended configuration
  // and periodically compares the MMIO window against it.  An injected
  // upset must be visible on the first scrub and a rewrite must clear it.
  RegisterFile regs;
  const std::uint32_t shadow[] = {/*kXDim=*/2, /*kZDim=*/6, /*kChunks=*/1,
                                  /*kBatches=*/1, /*kApprox=*/2,
                                  /*kCalcFreq=*/3, /*kPolicy=*/1};
  const Reg config_regs[] = {Reg::kXDim,    Reg::kZDim,  Reg::kChunks,
                             Reg::kBatches, Reg::kApprox, Reg::kCalcFreq,
                             Reg::kPolicy};
  for (std::size_t i = 0; i < std::size(config_regs); ++i) {
    regs.write(config_regs[i], shadow[i]);
  }

  FaultInjector injector(77);
  injector.schedule({0, FaultKind::kRegisterCorruption,
                     static_cast<std::size_t>(Reg::kZDim), /*bit=*/0,
                     /*magnitude=*/0.0, /*count=*/1});
  for (const FaultEvent& e :
       injector.events_at(0, FaultKind::kRegisterCorruption)) {
    regs.corrupt_register(static_cast<Reg>(e.index), 0x0005u);
  }

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < std::size(config_regs); ++i) {
    if (regs.read(config_regs[i]) != shadow[i]) {
      ++mismatches;
      regs.write(config_regs[i], shadow[i]);  // repair from the shadow
    }
  }
  EXPECT_EQ(mismatches, 1u);
  EXPECT_EQ(regs.read(Reg::kZDim), 6u);  // scrub restored the value

  for (std::size_t i = 0; i < std::size(config_regs); ++i) {
    EXPECT_EQ(regs.read(config_regs[i]), shadow[i]);
  }
}

TEST(SocFaultInjectionTest, StatusRegisterUpsetBeatsWriteProtection) {
  // STATUS is read-only from the software side, but an SEU is a device-side
  // event: corrupt_register must reach it anyway, and reset() recovers.
  RegisterFile regs;
  regs.set_status(kStatusDone);
  EXPECT_THROW(regs.write(Reg::kStatus, kStatusIdle), std::invalid_argument);

  regs.corrupt_register(Reg::kStatus, 0x4u);
  EXPECT_EQ(regs.read(Reg::kStatus), kStatusDone ^ 0x4u);

  regs.reset();
  EXPECT_EQ(regs.read(Reg::kStatus), kStatusIdle);
}

}  // namespace
}  // namespace kalmmind::soc

#endif  // KALMMIND_FAULTS
