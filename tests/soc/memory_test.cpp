#include "soc/memory.hpp"

#include <gtest/gtest.h>

namespace kalmmind::soc {
namespace {

TEST(MemoryTest, WordReadWriteRoundTrip) {
  MemoryParams p;
  p.size_words = 1024;
  MainMemory mem(p);
  mem.write_word(5, 3.25);
  EXPECT_DOUBLE_EQ(mem.read_word(5), 3.25);
  EXPECT_DOUBLE_EQ(mem.read_word(6), 0.0);
}

TEST(MemoryTest, BlockTransfer) {
  MemoryParams p;
  p.size_words = 64;
  MainMemory mem(p);
  double src[4] = {1, 2, 3, 4};
  mem.write_block(10, src, 4);
  double dst[4] = {};
  mem.read_block(10, dst, 4);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(dst[i], src[i]);
}

TEST(MemoryTest, OutOfRangeThrows) {
  MemoryParams p;
  p.size_words = 16;
  MainMemory mem(p);
  EXPECT_THROW(mem.read_word(16), std::out_of_range);
  EXPECT_THROW(mem.write_word(16, 0.0), std::out_of_range);
  double buf[4];
  EXPECT_THROW(mem.read_block(14, buf, 4), std::out_of_range);
  EXPECT_THROW(mem.write_block(14, buf, 4), std::out_of_range);
  EXPECT_NO_THROW(mem.read_block(12, buf, 4));
}

TEST(MemoryTest, BurstCyclesModelLatencyPlusBandwidth) {
  MemoryParams p;
  p.access_latency_cycles = 50;
  p.words_per_cycle = 2.0;
  MainMemory mem(p);
  EXPECT_EQ(mem.burst_cycles(0), 50u);
  EXPECT_EQ(mem.burst_cycles(100), 50u + 50u);
}

TEST(MemoryTest, DefaultSizedForFullInvocations) {
  MainMemory mem;
  // The motor invocation (model + 100 iterations of z=164) needs well
  // under the default capacity.
  EXPECT_GT(mem.size_words(), 100u * 164u + 164u * 164u + 4096u);
}

// Regression (UBSan float-cast-overflow): words_per_cycle <= 0 used to
// convert inf to uint64_t; it must saturate the bandwidth term instead.
TEST(MemoryTest, DegenerateBandwidthSaturatesInsteadOfUb) {
  MemoryParams p;
  p.size_words = 16;
  p.access_latency_cycles = 7;
  p.words_per_cycle = 0.0;
  MainMemory mem(p);
  EXPECT_EQ(mem.burst_cycles(0), 7u);  // 0/0 is NaN: no cycles charged
  EXPECT_EQ(mem.burst_cycles(64),
            7u + std::numeric_limits<std::uint64_t>::max());

  p.words_per_cycle = -2.0;
  MainMemory negative(p);
  EXPECT_EQ(negative.burst_cycles(64), 7u);  // negative rate: clamped to 0
}

}  // namespace
}  // namespace kalmmind::soc
