#include "soc/noc.hpp"

#include <gtest/gtest.h>

namespace kalmmind::soc {
namespace {

Noc mesh_3x3() {
  NocParams p;
  p.width = 3;
  p.height = 3;
  return Noc(p);
}

TEST(NocTest, RejectsDegenerateMesh) {
  NocParams p;
  p.width = 0;
  EXPECT_THROW(Noc{p}, std::invalid_argument);
  p = {};
  p.flit_bytes = 0;
  EXPECT_THROW(Noc{p}, std::invalid_argument);
}

TEST(NocTest, ContainsChecksBounds) {
  auto noc = mesh_3x3();
  EXPECT_TRUE(noc.contains({0, 0}));
  EXPECT_TRUE(noc.contains({2, 2}));
  EXPECT_FALSE(noc.contains({3, 0}));
  EXPECT_FALSE(noc.contains({-1, 0}));
}

TEST(NocTest, ManhattanHops) {
  auto noc = mesh_3x3();
  EXPECT_EQ(noc.hops({0, 0}, {0, 0}), 0u);
  EXPECT_EQ(noc.hops({0, 0}, {2, 1}), 3u);
  EXPECT_EQ(noc.hops({2, 2}, {0, 0}), 4u);
}

TEST(NocTest, OffMeshThrows) {
  auto noc = mesh_3x3();
  EXPECT_THROW(noc.hops({0, 0}, {5, 5}), std::out_of_range);
}

TEST(NocTest, TransferGrowsWithDistanceAndPayload) {
  auto noc = mesh_3x3();
  const auto near_small = noc.transfer_cycles({0, 0}, {1, 0}, 64);
  const auto far_small = noc.transfer_cycles({0, 0}, {2, 2}, 64);
  const auto near_large = noc.transfer_cycles({0, 0}, {1, 0}, 4096);
  EXPECT_GT(far_small, near_small);
  EXPECT_GT(near_large, near_small);
}

TEST(NocTest, PayloadSerializesAtOneFlitPerCycle) {
  NocParams p;
  p.width = 2;
  p.height = 1;
  p.flit_bytes = 8;
  Noc noc(p);
  const auto a = noc.transfer_cycles({0, 0}, {1, 0}, 80);
  const auto b = noc.transfer_cycles({0, 0}, {1, 0}, 160);
  EXPECT_EQ(b - a, 10u);  // 80 extra bytes = 10 extra flits
}

TEST(NocTest, RoundTripIsTwoTransfers) {
  auto noc = mesh_3x3();
  const auto rt = noc.round_trip_cycles({0, 0}, {2, 2}, 4);
  EXPECT_EQ(rt, noc.transfer_cycles({0, 0}, {2, 2}, 8) +
                    noc.transfer_cycles({2, 2}, {0, 0}, 4));
}

TEST(NocTest, ZeroPayloadStillPaysHeaderLatency) {
  auto noc = mesh_3x3();
  EXPECT_GT(noc.transfer_cycles({0, 0}, {1, 1}, 0), 0u);
}

}  // namespace
}  // namespace kalmmind::soc
