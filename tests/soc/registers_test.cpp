#include "soc/registers.hpp"

#include <gtest/gtest.h>

#include "soc/interrupts.hpp"

namespace kalmmind::soc {
namespace {

TEST(RegisterFileTest, StartsZeroed) {
  RegisterFile regs;
  EXPECT_EQ(regs.read(Reg::kCmd), 0u);
  EXPECT_EQ(regs.read(Reg::kApprox), 0u);
  EXPECT_EQ(regs.read(Reg::kStatus), kStatusIdle);
}

TEST(RegisterFileTest, ConfigRegistersReadBack) {
  RegisterFile regs;
  regs.write(Reg::kXDim, 6);
  regs.write(Reg::kZDim, 164);
  regs.write(Reg::kChunks, 5);
  regs.write(Reg::kBatches, 20);
  regs.write(Reg::kApprox, 3);
  regs.write(Reg::kCalcFreq, 2);
  regs.write(Reg::kPolicy, 1);
  EXPECT_EQ(regs.read(Reg::kXDim), 6u);
  EXPECT_EQ(regs.read(Reg::kZDim), 164u);
  EXPECT_EQ(regs.read(Reg::kChunks), 5u);
  EXPECT_EQ(regs.read(Reg::kBatches), 20u);
  EXPECT_EQ(regs.read(Reg::kApprox), 3u);
  EXPECT_EQ(regs.read(Reg::kCalcFreq), 2u);
  EXPECT_EQ(regs.read(Reg::kPolicy), 1u);
}

TEST(RegisterFileTest, StatusIsReadOnlyFromSoftware) {
  RegisterFile regs;
  EXPECT_THROW(regs.write(Reg::kStatus, kStatusDone), std::invalid_argument);
  regs.set_status(kStatusRunning);  // device side may write it
  EXPECT_EQ(regs.read(Reg::kStatus), kStatusRunning);
}

TEST(RegisterFileTest, ResetClearsEverything) {
  RegisterFile regs;
  regs.write(Reg::kApprox, 9);
  regs.set_status(kStatusDone);
  regs.reset();
  EXPECT_EQ(regs.read(Reg::kApprox), 0u);
  EXPECT_EQ(regs.read(Reg::kStatus), kStatusIdle);
}

TEST(InterruptLineTest, RaiseAcknowledgeCycle) {
  InterruptLine irq;
  EXPECT_FALSE(irq.pending());
  irq.raise(1234);
  EXPECT_TRUE(irq.pending());
  EXPECT_EQ(irq.count(), 1u);
  EXPECT_EQ(irq.acknowledge(), 1234u);
  EXPECT_FALSE(irq.pending());
  irq.raise(99);
  EXPECT_EQ(irq.count(), 2u);
}

}  // namespace
}  // namespace kalmmind::soc
