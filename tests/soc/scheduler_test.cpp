// Multi-accelerator scheduling and event tracing.
#include "soc/scheduler.hpp"

#include <gtest/gtest.h>

#include "../core/core_test_util.hpp"
#include "soc/trace.hpp"

namespace kalmmind::soc {
namespace {

using kalmmind::testing::tiny_dataset;

SocParams three_wide() {
  SocParams params;
  params.noc.width = 3;
  return params;
}

core::AcceleratorConfig cfg_for(const neural::NeuralDataset& ds,
                                std::uint32_t approx) {
  auto cfg = core::AcceleratorConfig::for_run(
      std::uint32_t(ds.model.x_dim()), std::uint32_t(ds.model.z_dim()),
      ds.test_measurements.size());
  cfg.approx = approx;
  cfg.policy = 1;
  return cfg;
}

TEST(SchedulerTest, RejectsEmptyAndDuplicateTargets) {
  Soc chip(three_wide());
  chip.add_accelerator("a", hls::DatapathSpec{}, {1, 1});
  InvocationScheduler sched(chip);
  EXPECT_THROW(sched.run({}), std::invalid_argument);

  const auto& ds = tiny_dataset();
  ScheduledInvocation inv;
  inv.accelerator = 0;
  inv.model = &ds.model;
  inv.measurements = &ds.test_measurements;
  inv.config = cfg_for(ds, 1);
  EXPECT_THROW(sched.run({inv, inv}), std::invalid_argument);

  ScheduledInvocation null_payload = inv;
  null_payload.model = nullptr;
  EXPECT_THROW(sched.run({null_payload}), std::invalid_argument);
}

TEST(SchedulerTest, TwoTilesRunConcurrently) {
  Soc chip(three_wide());
  chip.add_accelerator("gn0", hls::DatapathSpec{}, {1, 1});
  chip.add_accelerator("gn1", hls::DatapathSpec{}, {2, 1});

  const auto& ds = tiny_dataset();
  ScheduledInvocation a;
  a.accelerator = 0;
  a.model = &ds.model;
  a.measurements = &ds.test_measurements;
  a.config = cfg_for(ds, 3);
  ScheduledInvocation b = a;
  b.accelerator = 1;

  InvocationScheduler sched(chip);
  auto result = sched.run({a, b});
  ASSERT_EQ(result.entries.size(), 2u);
  // Both busy intervals overlap: the second starts before the first ends.
  EXPECT_LT(result.entries[1].start_cycle, result.entries[0].done_cycle);
  // Makespan beats back-to-back execution.
  EXPECT_LT(result.makespan_cycles, result.serial_cycles);
  EXPECT_GT(result.parallel_speedup(), 1.3);
}

TEST(SchedulerTest, MemoryRegionsDoNotOverlap) {
  Soc chip(three_wide());
  chip.add_accelerator("gn0", hls::DatapathSpec{}, {1, 1});
  chip.add_accelerator("gn1", hls::DatapathSpec{}, {2, 1});
  const auto& ds = tiny_dataset();
  ScheduledInvocation a;
  a.accelerator = 0;
  a.model = &ds.model;
  a.measurements = &ds.test_measurements;
  a.config = cfg_for(ds, 1);
  ScheduledInvocation b = a;
  b.accelerator = 1;
  InvocationScheduler sched(chip);
  auto result = sched.run({a, b});
  EXPECT_GE(result.entries[1].map.base, result.entries[0].map.end());
}

TEST(SchedulerTest, ResultsMatchSingleInvocations) {
  // The decoded states of scheduled runs are bit-exact with isolated runs.
  Soc chip(three_wide());
  chip.add_accelerator("gn0", hls::DatapathSpec{}, {1, 1});
  chip.add_accelerator("gn1", hls::DatapathSpec{}, {2, 1});
  const auto& ds = tiny_dataset();
  ScheduledInvocation a;
  a.accelerator = 0;
  a.model = &ds.model;
  a.measurements = &ds.test_measurements;
  a.config = cfg_for(ds, 2);
  ScheduledInvocation b = a;
  b.accelerator = 1;
  b.config = cfg_for(ds, 4);

  InvocationScheduler sched(chip);
  auto result = sched.run({a, b});

  for (std::size_t k = 0; k < 2; ++k) {
    auto direct = core::Accelerator(hls::DatapathSpec{},
                                    k == 0 ? a.config : b.config)
                      .run(ds.model, ds.test_measurements);
    EspDriver reader(chip, result.entries[k].accelerator);
    auto states = reader.read_states(result.entries[k].map);
    ASSERT_EQ(states.size(), direct.states.size());
    for (std::size_t n = 0; n < states.size(); ++n)
      EXPECT_TRUE(states[n] == direct.states[n]) << "accel " << k << " @" << n;
  }
}

TEST(TraceTest, DisabledRecorderStoresNothing) {
  TraceRecorder trace;
  trace.record(10, TraceKind::kMmioWrite, "x");
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceTest, RecordsTheDriverFlow) {
  Soc chip{SocParams{}};
  chip.trace().set_enabled(true);
  auto id = chip.add_accelerator("gn", hls::DatapathSpec{}, {1, 1});
  const auto& ds = tiny_dataset();
  EspDriver driver(chip, id);
  auto map = driver.write_invocation(ds.model, ds.test_measurements);
  driver.configure(cfg_for(ds, 1));
  driver.start_and_wait(map);

  const auto& trace = chip.trace();
  EXPECT_EQ(trace.count(TraceKind::kMmioWrite), 8u);  // 7 config + CMD
  EXPECT_EQ(trace.count(TraceKind::kComputeStart), 1u);
  EXPECT_EQ(trace.count(TraceKind::kComputeEnd), 1u);
  EXPECT_EQ(trace.count(TraceKind::kIrqRaise), 1u);
  EXPECT_EQ(trace.count(TraceKind::kIrqAck), 1u);

  // Cycles are monotone within the compute lifecycle.
  std::uint64_t start = 0, end = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == TraceKind::kComputeStart) start = e.cycle;
    if (e.kind == TraceKind::kComputeEnd) end = e.cycle;
  }
  EXPECT_LT(start, end);

  const std::string s = trace.to_string();
  EXPECT_NE(s.find("compute.start"), std::string::npos);
  EXPECT_NE(s.find("gn"), std::string::npos);
}

}  // namespace
}  // namespace kalmmind::soc
