// FlightRecorder (telemetry/flight_recorder.hpp): ring semantics, the
// thread-local ScopedFlightSession attribution, the JSONL round-trip the
// blackbox CLI consumes, postmortem file + trace mirroring, and the
// compile-out behavior under KALMMIND_TELEMETRY=OFF.  Suite names start
// with "Telemetry" on purpose: scripts/tier1.sh re-runs ^Serve|^Telemetry
// under TSan, which covers the concurrent record/dump test here.
#include "telemetry/telemetry.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kalmmind::telemetry {
namespace {

namespace fs = std::filesystem;

FlightEvent make_event(FlightEventKind kind, std::uint64_t session,
                       std::uint64_t step, std::uint64_t arg = 0,
                       double value = 0.0, const char* detail = nullptr) {
  FlightEvent e;
  e.ts_us = double(step) * 10.0 + 1.0;
  e.session = session;
  e.step = step;
  e.arg = arg;
  e.value = value;
  e.kind = kind;
  if (detail != nullptr) {
    std::snprintf(e.detail, sizeof(e.detail), "%s", detail);
  }
  return e;
}

// Each test starts from a clean global recorder.  Tests run one-per-process
// under ctest (gtest_discover_tests), so the global singleton is private to
// the test.
void reset_recorder() {
  auto& blackbox = FlightRecorder::global();
  blackbox.clear();
  blackbox.set_enabled(true);
  blackbox.set_capacity(FlightRecorder::kDefaultCapacity);
  blackbox.set_dump_dir("");
}

TEST(TelemetryFlightRecorderTest, KindNamesRoundTrip) {
  for (std::size_t k = 0; k < kFlightEventKindCount; ++k) {
    const auto kind = static_cast<FlightEventKind>(k);
    FlightEventKind parsed;
    ASSERT_TRUE(parse_flight_event_kind(to_string(kind), parsed))
        << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  FlightEventKind parsed;
  EXPECT_FALSE(parse_flight_event_kind("no_such_kind", parsed));
}

TEST(TelemetryFlightRecorderTest, RingKeepsOnlyTheLastCapacityEvents) {
  reset_recorder();
  auto& blackbox = FlightRecorder::global();
  blackbox.set_capacity(8);

  for (std::uint64_t n = 0; n < 20; ++n) {
    blackbox.record(FlightEventKind::kDeadlineMiss, /*session=*/42, n, n);
  }
  const std::vector<FlightEvent> events = blackbox.dump(42);

  if (!kCompiledIn) {
    // KALMMIND_TELEMETRY=OFF: record() compiles to a no-op.
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(blackbox.total_recorded(42), 0u);
    return;
  }
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(blackbox.total_recorded(42), 20u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Oldest first: steps 12..19 survive the wrap.
    EXPECT_EQ(events[i].step, 12u + i);
    EXPECT_EQ(events[i].kind, FlightEventKind::kDeadlineMiss);
    EXPECT_GT(events[i].ts_us, 0.0);  // stamped by record_impl
  }
  EXPECT_EQ(blackbox.sessions(), std::vector<std::uint64_t>{42});
}

TEST(TelemetryFlightRecorderTest, DisabledRecorderDropsEvents) {
  reset_recorder();
  auto& blackbox = FlightRecorder::global();
  blackbox.set_enabled(false);
  blackbox.record(FlightEventKind::kRestart, 7, 1);
  blackbox.record_here(FlightEventKind::kRestart);
  EXPECT_TRUE(blackbox.dump(7).empty());
  EXPECT_EQ(blackbox.total_recorded(7), 0u);

  blackbox.set_enabled(true);
  blackbox.record(FlightEventKind::kRestart, 7, 2);
  if (kCompiledIn) {
    EXPECT_EQ(blackbox.total_recorded(7), 1u);
  } else {
    EXPECT_EQ(blackbox.total_recorded(7), 0u);
  }
}

TEST(TelemetryFlightRecorderTest, ScopedSessionAttributesAndNests) {
  reset_recorder();
  auto& blackbox = FlightRecorder::global();
  {
    ScopedFlightSession outer(5, 10);
    blackbox.record_here(FlightEventKind::kGainCacheHit, 0xabc);
    {
      ScopedFlightSession inner(6, 11);
      blackbox.record_here(FlightEventKind::kGainCacheMiss, 0xdef);
    }
    // The outer context is restored after the nested scope ends.
    blackbox.record_here(FlightEventKind::kGainCacheEviction, 0x123);
  }
  // No active scope: events attribute to session 0 (unattributed).
  blackbox.record_here(FlightEventKind::kHealthFault, 1, 0.0, "orphan");

  if (!kCompiledIn) {
    EXPECT_TRUE(blackbox.sessions().empty());
    return;
  }
  const auto five = blackbox.dump(5);
  ASSERT_EQ(five.size(), 2u);
  EXPECT_EQ(five[0].kind, FlightEventKind::kGainCacheHit);
  EXPECT_EQ(five[0].step, 10u);
  EXPECT_EQ(five[1].kind, FlightEventKind::kGainCacheEviction);
  const auto six = blackbox.dump(6);
  ASSERT_EQ(six.size(), 1u);
  EXPECT_EQ(six[0].step, 11u);
  const auto orphan = blackbox.dump(0);
  ASSERT_EQ(orphan.size(), 1u);
  EXPECT_STREQ(orphan[0].detail, "orphan");
}

TEST(TelemetryFlightRecorderTest, JsonlRoundTripPreservesEveryField) {
  // The free to/parse functions work regardless of the telemetry build: the
  // blackbox CLI must read dumps produced by instrumented builds.
  std::vector<FlightEvent> events;
  events.push_back(make_event(FlightEventKind::kHealthFault, 3, 17, 8, 0.0,
                              "state_exploded"));
  events.push_back(make_event(FlightEventKind::kDeadlineMiss, 3, 18, 2,
                              0.00125));
  events.push_back(make_event(FlightEventKind::kQuarantine, 3, 18, 4, 1.0,
                              "q \"quoted\"\\slash"));

  const std::string jsonl = to_jsonl(events);
  const std::vector<FlightEvent> parsed = parse_jsonl(jsonl);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].ts_us, events[i].ts_us) << i;
    EXPECT_EQ(parsed[i].session, events[i].session) << i;
    EXPECT_EQ(parsed[i].step, events[i].step) << i;
    EXPECT_EQ(parsed[i].arg, events[i].arg) << i;
    EXPECT_DOUBLE_EQ(parsed[i].value, events[i].value) << i;
    EXPECT_EQ(parsed[i].kind, events[i].kind) << i;
    EXPECT_STREQ(parsed[i].detail, events[i].detail) << i;
  }
}

TEST(TelemetryFlightRecorderTest, ParserSkipsBlankAndMalformedLines) {
  const std::string text =
      "\n"
      "not json at all\n" +
      to_json_line(make_event(FlightEventKind::kRestored, 9, 4, 2)) +
      "\n"
      "{\"ts_us\":1.0,\"kind\":\"no_such_kind\"}\n";
  const std::vector<FlightEvent> parsed = parse_jsonl(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].kind, FlightEventKind::kRestored);
  EXPECT_EQ(parsed[0].session, 9u);

  FlightEvent out;
  EXPECT_FALSE(parse_json_line("", out));
  EXPECT_FALSE(parse_json_line("{}", out));
}

TEST(TelemetryFlightRecorderTest, PostmortemWritesFileAndMirrorsTrace) {
  reset_recorder();
  auto& blackbox = FlightRecorder::global();
  auto& tracer = SpanTracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  const std::string dir = ::testing::TempDir();
  blackbox.set_dump_dir(dir);
  EXPECT_EQ(blackbox.dump_dir(), dir);

  blackbox.record(FlightEventKind::kHealthFault, 11, 3, 8, 0.0,
                  "state_exploded");
  blackbox.record(FlightEventKind::kQuarantine, 11, 3, 4, 0.0);
  const std::string path = blackbox.postmortem(11, "unit test/quarantine");

  if (!kCompiledIn) {
    // Nothing was recorded, so there is nothing to dump.
    EXPECT_TRUE(path.empty());
    return;
  }
  ASSERT_FALSE(path.empty());
  // The reason is sanitized into a safe filename chunk: the '/' and the
  // space in the reason must not survive into the basename.
  const std::string base = fs::path(path).filename().string();
  EXPECT_EQ(base.rfind("blackbox_11_", 0), 0u) << path;
  EXPECT_EQ(base.find(' '), std::string::npos) << path;
  EXPECT_TRUE(base.size() > 6 &&
              base.compare(base.size() - 6, 6, ".jsonl") == 0)
      << path;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::vector<FlightEvent> parsed = parse_jsonl(ss.str());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].kind, FlightEventKind::kHealthFault);
  EXPECT_EQ(parsed[1].kind, FlightEventKind::kQuarantine);
  fs::remove(path);

  // Every journal entry is mirrored as an 'i' instant on the session's
  // synthetic blackbox track (pid kTracePid).
  std::size_t instants = 0;
  for (const TraceEvent& e : tracer.snapshot()) {
    if (e.ph == 'i' && e.pid == FlightRecorder::kTracePid) ++instants;
  }
  EXPECT_EQ(instants, 2u);
  tracer.set_enabled(false);
  tracer.clear();
}

TEST(TelemetryFlightRecorderTest, EraseAndClearDropSessions) {
  reset_recorder();
  auto& blackbox = FlightRecorder::global();
  blackbox.record(FlightEventKind::kRestart, 1, 0);
  blackbox.record(FlightEventKind::kRestart, 2, 0);
  if (!kCompiledIn) return;
  EXPECT_EQ(blackbox.sessions().size(), 2u);
  blackbox.erase(1);
  EXPECT_EQ(blackbox.sessions(), std::vector<std::uint64_t>{2});
  blackbox.clear();
  EXPECT_TRUE(blackbox.sessions().empty());
}

TEST(TelemetryFlightRecorderConcurrency, ParallelRecordDumpPostmortem) {
  // TSan target: writers journal into per-thread sessions (different
  // stripes) while a reader loops dump/sessions/total_recorded and a
  // postmortem fires mid-storm.  The invariants are checked after join;
  // under TSan the value is the absence of data races.
  reset_recorder();
  auto& blackbox = FlightRecorder::global();
  blackbox.set_capacity(64);

  constexpr std::uint64_t kWriters = 4;
  constexpr std::uint64_t kEventsPerWriter = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (std::uint64_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([w, &blackbox] {
      ScopedFlightSession flight(100 + w, 0);
      for (std::uint64_t n = 0; n < kEventsPerWriter; ++n) {
        if (n % 3 == 0) {
          blackbox.record_here(FlightEventKind::kGainCacheHit, n);
        } else {
          blackbox.record(FlightEventKind::kDeadlineMiss, 100 + w, n, n,
                          1e-4 * double(n));
        }
      }
    });
  }
  threads.emplace_back([&blackbox] {
    for (int i = 0; i < 200; ++i) {
      (void)blackbox.sessions();
      (void)blackbox.dump(100);
      (void)blackbox.total_recorded(101);
      if (i == 100) (void)blackbox.postmortem(102, "mid-storm");
    }
  });
  for (std::thread& t : threads) t.join();

  if (!kCompiledIn) {
    EXPECT_TRUE(blackbox.sessions().empty());
    return;
  }
  for (std::uint64_t w = 0; w < kWriters; ++w) {
    EXPECT_EQ(blackbox.total_recorded(100 + w), kEventsPerWriter);
    EXPECT_EQ(blackbox.dump(100 + w).size(), 64u);
  }
}

}  // namespace
}  // namespace kalmmind::telemetry
