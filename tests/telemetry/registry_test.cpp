// MetricsRegistry: counters under concurrent writers, gauge semantics,
// histogram bucket edges (Prometheus le-inclusive), the shared percentile
// implementation, and the text/JSON snapshot formats.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "telemetry/registry.hpp"

namespace telemetry = kalmmind::telemetry;

namespace {

TEST(TelemetryRegistryTest, CounterAccumulatesAcrossConcurrentWriters) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::MetricsRegistry registry;
  telemetry::Counter& counter = registry.counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), std::uint64_t(kThreads) * kPerThread);
}

TEST(TelemetryRegistryTest, CounterFindOrCreateReturnsSameInstance) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::MetricsRegistry registry;
  telemetry::Counter& a = registry.counter("test.same");
  telemetry::Counter& b = registry.counter("test.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(TelemetryRegistryTest, GaugeSetAddAndConcurrentAddsNeverLoseUpdates) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::MetricsRegistry registry;
  telemetry::Gauge& gauge = registry.gauge("test.gauge");
  gauge.set(5.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 5.0);
  gauge.add(-2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);

  gauge.set(0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 10000; ++i) gauge.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), 40000.0);
}

TEST(TelemetryRegistryTest, HistogramBucketEdgesAreLeInclusive) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::Histogram h({1.0, 2.0, 4.0});
  // Exactly-on-bound observations land in the bound's own bucket
  // (Prometheus `le` semantics), not the next one.
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);  // overflow bucket
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 2.0
  EXPECT_EQ(h.bucket_count(2), 2u);  // 3.0, 4.0
  EXPECT_EQ(h.bucket_count(3), 1u);  // 100.0
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 2.0 + 4.0 + 0.5 + 3.0 + 100.0);
}

TEST(TelemetryRegistryTest, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(telemetry::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(telemetry::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(telemetry::Histogram({}), std::invalid_argument);
}

TEST(TelemetryRegistryTest, HistogramQuantileInterpolatesWithinBucket) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);   // bucket (0, 10]
  for (int i = 0; i < 10; ++i) h.observe(15.0);  // bucket (10, 20]
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 0.0);
  EXPECT_LE(median, 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  // Everything fits under the second bound.
  EXPECT_LE(h.quantile(1.0), 20.0);
  telemetry::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(TelemetryRegistryTest, PercentileMatchesOrderStatisticInterpolation) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(telemetry::percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(telemetry::percentile(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(telemetry::percentile(sorted, 0.5), 2.5);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(telemetry::percentile(one, 0.99), 7.0);
}

TEST(TelemetryRegistryTest, SanitizeMetricNameReplacesDisallowedChars) {
  EXPECT_EQ(telemetry::sanitize_metric_name("kalmmind.kf.steps_total"),
            "kalmmind_kf_steps_total");
  EXPECT_EQ(telemetry::sanitize_metric_name("a-b c:d_e9"), "a_b_c:d_e9");
}

TEST(TelemetryRegistryTest, PrometheusTextHasTypesBucketsSumAndCount) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::MetricsRegistry registry;
  registry.counter("demo.count").add(4);
  registry.gauge("demo.gauge").set(1.5);
  telemetry::Histogram& h = registry.histogram("demo.hist", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(2.0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE demo_count counter"), std::string::npos);
  EXPECT_NE(text.find("demo_count 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_hist histogram"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("demo_hist_bucket{le=\"0.1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("demo_hist_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("demo_hist_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("demo_hist_count 3"), std::string::npos);
  EXPECT_NE(text.find("demo_hist_sum"), std::string::npos);
}

TEST(TelemetryRegistryTest, JsonSnapshotContainsAllThreeKinds) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::MetricsRegistry registry;
  registry.counter("c").add();
  registry.gauge("g").set(2.0);
  registry.histogram("h", {1.0}).observe(0.5);
  const std::string json = registry.json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c\":1"), std::string::npos);
  EXPECT_NE(json.find("\"le\":null"), std::string::npos);
}

TEST(TelemetryRegistryTest, ResetValuesZeroesWhileHandlesStayValid) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::MetricsRegistry registry;
  telemetry::Counter& c = registry.counter("r.c");
  telemetry::Histogram& h = registry.histogram("r.h", {1.0});
  c.add(10);
  h.observe(0.5);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  c.add();  // handle still usable
  EXPECT_EQ(c.value(), 1u);
}

TEST(TelemetryRegistryTest, RuntimeKillSwitchStopsRecording) {
  telemetry::MetricsRegistry registry;
  telemetry::Counter& c = registry.counter("kill.c");
  telemetry::Gauge& g = registry.gauge("kill.g");
  telemetry::set_enabled(false);
  c.add(5);
  g.set(9.0);
  telemetry::set_enabled(true);
  if constexpr (telemetry::kCompiledIn) {
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
  }
  c.add(2);
  EXPECT_EQ(c.value(), telemetry::kCompiledIn ? 2u : 0u);
}

TEST(TelemetryRegistryTest, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&telemetry::MetricsRegistry::global(),
            &telemetry::MetricsRegistry::global());
}

}  // namespace
