// Trace-export round trip: emit spans/instants/counters plus bridged SoC
// cycle events, write Chrome trace event JSON, then re-parse the file with
// a minimal JSON reader and validate the fields Perfetto/chrome://tracing
// require (ph, ts, pid, tid, name).  Also covers the TraceRecorder event
// cap (satellite of the telemetry PR).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "soc/trace.hpp"
#include "soc/trace_bridge.hpp"
#include "telemetry/telemetry.hpp"

namespace telemetry = kalmmind::telemetry;
namespace soc = kalmmind::soc;

namespace {

// ---- minimal JSON value + recursive-descent parser (test-only) ----

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing JSON input");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of JSON");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", {JsonValue::kBool, true});
      case 'f': return keyword("false", {JsonValue::kBool, false});
      case 'n': return keyword("null", {});
      default: return number();
    }
  }

  JsonValue keyword(const std::string& word, JsonValue v) {
    if (s_.compare(pos_, word.size(), word) != 0)
      throw std::runtime_error("bad JSON keyword at " + std::to_string(pos_));
    pos_ += word.size();
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad JSON number");
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::kString;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        char esc = s_.at(pos_++);
        switch (esc) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'u': {
            const int code = std::stoi(s_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            v.string += char(code);  // test traces stay ASCII
            break;
          }
          default: throw std::runtime_error("bad JSON escape");
        }
      } else {
        v.string += c;
      }
    }
    expect('"');
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Populate a tracer with one of everything plus a bridged SoC recorder.
void fill_tracer(telemetry::SpanTracer& tracer) {
  tracer.set_enabled(true);
  tracer.set_thread_name("roundtrip-main");
  tracer.complete("kf.predict", "kf", 100.0, 25.0, "\"session\":7");
  tracer.instant("note \"quoted\"", "app");
  tracer.counter("serve.queued_bins", 3.0);

  soc::TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.record(100, soc::TraceKind::kMmioWrite, "kalmmind0", "CMD=1");
  recorder.record(120, soc::TraceKind::kDmaIn, "kalmmind0");
  recorder.record(150, soc::TraceKind::kComputeStart, "kalmmind0");
  recorder.record(950, soc::TraceKind::kComputeEnd, "kalmmind0");
  recorder.record(960, soc::TraceKind::kIrqRaise, "kalmmind0");
  const std::size_t merged =
      soc::export_trace(recorder, tracer, /*clock_hz=*/1e6);  // 1 us/cycle
  ASSERT_EQ(merged, 4u);  // start+end fold into one 'X'
}

TEST(TelemetryRoundTripTest, ExportedJsonParsesWithRequiredChromeFields) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::SpanTracer tracer;
  fill_tracer(tracer);

  const std::string path = "trace_roundtrip_test.json";
  ASSERT_TRUE(tracer.write_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();

  const JsonValue root = JsonParser(buffer.str()).parse();
  ASSERT_EQ(root.kind, JsonValue::kObject);
  EXPECT_EQ(root.at("displayTimeUnit").string, "ms");
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);
  ASSERT_FALSE(events.array.empty());

  bool saw_complete = false, saw_instant = false, saw_counter = false;
  bool saw_soc_compute = false, saw_soc_instant = false;
  for (const JsonValue& e : events.array) {
    // Fields every Chrome trace event needs.
    ASSERT_EQ(e.at("name").kind, JsonValue::kString);
    ASSERT_EQ(e.at("ph").kind, JsonValue::kString);
    ASSERT_EQ(e.at("ph").string.size(), 1u);
    ASSERT_EQ(e.at("ts").kind, JsonValue::kNumber);
    ASSERT_EQ(e.at("pid").kind, JsonValue::kNumber);
    ASSERT_EQ(e.at("tid").kind, JsonValue::kNumber);
    const char ph = e.at("ph").string[0];
    const std::string& name = e.at("name").string;
    if (ph == 'X') {
      ASSERT_TRUE(e.has("dur"));
      EXPECT_GE(e.at("dur").number, 0.0);
    }
    if (ph == 'i') EXPECT_EQ(e.at("s").string, "t");
    if (name == "kf.predict") {
      saw_complete = true;
      EXPECT_EQ(ph, 'X');
      EXPECT_DOUBLE_EQ(e.at("ts").number, 100.0);
      EXPECT_DOUBLE_EQ(e.at("dur").number, 25.0);
      EXPECT_DOUBLE_EQ(e.at("args").at("session").number, 7.0);
    }
    if (name == "note \"quoted\"") saw_instant = true;  // escape round-trip
    if (ph == 'C' && name == "serve.queued_bins") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 3.0);
    }
    if (name == "soc.compute") {
      saw_soc_compute = true;
      EXPECT_EQ(ph, 'X');
      EXPECT_EQ(int(e.at("pid").number), telemetry::SpanTracer::kSocPid);
      // 800 cycles at 1 MHz = 800 us, starting at cycle 150.
      EXPECT_DOUBLE_EQ(e.at("ts").number, 150.0);
      EXPECT_DOUBLE_EQ(e.at("dur").number, 800.0);
      EXPECT_DOUBLE_EQ(e.at("args").at("cycle").number, 150.0);
    }
    if (name == "dma.in") {
      saw_soc_instant = true;
      EXPECT_EQ(ph, 'i');
      EXPECT_EQ(int(e.at("pid").number), telemetry::SpanTracer::kSocPid);
    }
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_soc_compute);
  EXPECT_TRUE(saw_soc_instant);
  std::remove(path.c_str());
}

TEST(TelemetryRoundTripTest, SocTracksGetThreadNameMetadata) {
  telemetry::SpanTracer tracer;
  soc::TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.record(1, soc::TraceKind::kMmioWrite, "tileA");
  recorder.record(2, soc::TraceKind::kMmioWrite, "tileB");
  soc::export_trace(recorder, tracer, 1e6);
  std::size_t soc_tracks = 0;
  for (const auto& e : tracer.snapshot()) {
    if (e.ph == 'M' && e.pid == telemetry::SpanTracer::kSocPid) ++soc_tracks;
  }
  EXPECT_EQ(soc_tracks, 2u);  // one named track per tile
}

TEST(TelemetryRoundTripTest, TraceRecorderCapDropsAndCounts) {
  soc::TraceRecorder recorder;
  EXPECT_EQ(recorder.capacity(), soc::TraceRecorder::kDefaultCapacity);
  recorder.set_enabled(true);
  recorder.set_capacity(2);
  telemetry::Counter& dropped_metric =
      telemetry::MetricsRegistry::global().counter(
          "kalmmind.soc.trace_events_dropped_total");
  const std::uint64_t before = dropped_metric.value();
  for (int i = 0; i < 5; ++i) {
    recorder.record(std::uint64_t(i), soc::TraceKind::kMmioWrite, "t");
  }
  EXPECT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3u);
  if constexpr (telemetry::kCompiledIn) {
    EXPECT_EQ(dropped_metric.value() - before, 3u);
  }
  recorder.clear();
  EXPECT_EQ(recorder.dropped(), 0u);
}

}  // namespace
