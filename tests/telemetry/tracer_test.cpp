// SpanTracer: RAII spans, counter tracks, per-thread track ids, the
// bounded buffer's dropped-event accounting, and JSON escaping.
#include <gtest/gtest.h>

#include <thread>

#include "telemetry/tracer.hpp"

namespace telemetry = kalmmind::telemetry;

namespace {

TEST(TelemetryTracerTest, CompleteAndInstantRecordWhenEnabled) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::SpanTracer tracer;
  tracer.set_enabled(true);
  tracer.complete("work", "test", 10.0, 5.0);
  tracer.instant("tick", "test");
  const auto events = tracer.snapshot();
  // thread_name metadata + the two explicit events.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ph, 'M');
  EXPECT_EQ(events[0].name, "thread_name");
  EXPECT_EQ(events[1].name, "work");
  EXPECT_EQ(events[1].ph, 'X');
  EXPECT_DOUBLE_EQ(events[1].ts_us, 10.0);
  EXPECT_DOUBLE_EQ(events[1].dur_us, 5.0);
  EXPECT_EQ(events[2].ph, 'i');
}

TEST(TelemetryTracerTest, DisabledTracerRecordsNothingThroughEmitters) {
  telemetry::SpanTracer tracer;
  tracer.complete("work", "test", 0.0, 1.0);
  tracer.instant("tick", "test");
  tracer.counter("depth", 3.0);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TelemetryTracerTest, RawRecordBypassesEnabledGate) {
  telemetry::SpanTracer tracer;  // disabled
  telemetry::TraceEvent e;
  e.name = "bridged";
  e.ph = 'i';
  tracer.record(std::move(e));
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(TelemetryTracerTest, CapacityBoundsBufferAndCountsDrops) {
  telemetry::SpanTracer tracer;
  tracer.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    telemetry::TraceEvent e;
    e.name = "e";
    tracer.record(std::move(e));
  }
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TelemetryTracerTest, ThreadsGetDistinctTidsAndNameMetadata) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::SpanTracer tracer;
  tracer.set_enabled(true);
  tracer.complete("main-span", "test", 0.0, 1.0);
  std::thread worker(
      [&tracer] { tracer.complete("worker-span", "test", 2.0, 1.0); });
  worker.join();
  const auto events = tracer.snapshot();
  std::uint32_t main_tid = 0, worker_tid = 0;
  std::size_t metadata = 0;
  for (const auto& e : events) {
    if (e.name == "main-span") main_tid = e.tid;
    if (e.name == "worker-span") worker_tid = e.tid;
    if (e.ph == 'M') ++metadata;
  }
  EXPECT_NE(main_tid, 0u);
  EXPECT_NE(worker_tid, 0u);
  EXPECT_NE(main_tid, worker_tid);
  EXPECT_EQ(metadata, 2u);  // one thread_name per registered thread
}

TEST(TelemetryTracerTest, CounterEventsCarryValueArgs) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::SpanTracer tracer;
  tracer.set_enabled(true);
  tracer.counter("queue_depth", 7.0);
  const auto events = tracer.snapshot();
  ASSERT_FALSE(events.empty());
  const auto& e = events.back();
  EXPECT_EQ(e.ph, 'C');
  EXPECT_NE(e.args_json.find("\"value\":7"), std::string::npos);
}

TEST(TelemetryTracerTest, SpanRaiiRecordsOnGlobalTracer) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "KALMMIND_TELEMETRY=OFF";
  telemetry::SpanTracer& tracer = telemetry::SpanTracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    telemetry::Span span("scoped-work", "test");
    span.set_args_json("\"k\":1");
  }
  tracer.set_enabled(false);
  bool found = false;
  for (const auto& e : tracer.snapshot()) {
    if (e.name == "scoped-work") {
      found = true;
      EXPECT_EQ(e.ph, 'X');
      EXPECT_GE(e.dur_us, 0.0);
      EXPECT_EQ(e.args_json, "\"k\":1");
    }
  }
  EXPECT_TRUE(found);
  tracer.clear();
}

TEST(TelemetryTracerTest, SpanIsANoOpWhileTracingDisabled) {
  telemetry::SpanTracer& tracer = telemetry::SpanTracer::global();
  tracer.clear();
  tracer.set_enabled(false);
  { telemetry::Span span("invisible", "test"); }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TelemetryTracerTest, JsonEscapeHandlesQuotesBackslashesAndControl) {
  EXPECT_EQ(telemetry::json_escape("plain"), "plain");
  EXPECT_EQ(telemetry::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(telemetry::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(telemetry::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(telemetry::json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
