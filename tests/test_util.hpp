// Shared helpers for the test suites.
#pragma once

#include <gtest/gtest.h>

#include <random>

#include "linalg/linalg.hpp"

namespace kalmmind::testing {

using linalg::Matrix;
using linalg::Rng;
using linalg::Vector;

// Naive O(n^3) reference multiply for validating the optimized kernels.
template <typename T>
Matrix<T> naive_multiply(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      T acc = T(0);
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  return c;
}

template <typename T>
void expect_matrix_near(const Matrix<T>& a, const Matrix<T>& b, double tol,
                        const char* what = "") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_NEAR(linalg::to_double(a(i, j)), linalg::to_double(b(i, j)), tol)
          << what << " at (" << i << "," << j << ")";
}

template <typename T>
void expect_vector_near(const Vector<T>& a, const Vector<T>& b, double tol,
                        const char* what = "") {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(linalg::to_double(a[i]), linalg::to_double(b[i]), tol)
        << what << " at " << i;
}

// Identity-residual of a candidate inverse, in double.
template <typename T>
double inverse_error(const Matrix<T>& a, const Matrix<T>& inv) {
  return linalg::inverse_residual(a, inv);
}

}  // namespace kalmmind::testing
