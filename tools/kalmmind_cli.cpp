// kalmmind — command-line driver for the accelerator model.
//
//   kalmmind [--dataset motor|somatosensory|hippocampus]
//            [--datapath gauss-newton|cholesky-newton|qr-newton|lite|
//                        sskf|sskf-newton|taylor|gauss-only]
//            [--dtype float32|fx32|fx64]
//            [--calc-freq N] [--approx N] [--policy 0|1]
//            [--iterations N] [--seed N]
//            [--csv PREFIX]    write PREFIX_trajectory.csv
//            [--breakdown]     print the per-module latency report
//
// Runs one accelerator configuration on one dataset and prints accuracy
// (vs the float64 reference), decode quality (vs ground truth), latency,
// power and energy.
//
//   kalmmind serve-bench [--dataset NAME] [--sessions N] [--workers N]
//                        [--iterations N] [--strategy NAME]
//                        [--calc-freq N] [--approx N] [--policy 0|1]
//
// Streams N concurrent sessions of the dataset through the multi-session
// DecodeServer and prints the throughput/latency/deadline stats snapshot.
//
//   kalmmind cluster-bench [--dataset NAME] [--shards N] [--sessions N]
//                          [--iterations N] [--no-migrate]
//
// Streams N sessions through the ShardedDecodeServer, drain-migrates one
// shard mid-stream (checkpoint + steal-queue + restore), prints the
// cluster stats rollup plus migration latency, and verifies the migrated
// trajectory bit-for-bit against a sequential filter (docs/serving.md).
//
//   kalmmind telemetry-demo [--dataset NAME] [--iterations N]
//
// Exercises every instrumented layer (filter spans, serve spans, batched
// serving + gain-schedule cache, flight-recorder journal, bridged SoC
// cycle events) and writes a Chrome trace + metrics snapshot.
//
//   kalmmind blackbox FILE [--session N] [--kind NAME] [--last N]
//
// Pretty-prints a flight-recorder postmortem dump (blackbox_*.jsonl, see
// docs/observability.md), optionally filtered.
//
//   kalmmind simd-info
//
// Prints the runtime SIMD kernel dispatch resolution (docs/performance.md):
// the probed tier, the active tier, every tier usable on this host, and
// whether a KALMMIND_SIMD= override was applied.
//
// Global flags (any subcommand, stripped before dispatch):
//   --trace-out FILE    enable span tracing; write Chrome trace event JSON
//                       (open in Perfetto or chrome://tracing)
//   --metrics-out FILE  write the metrics registry on exit (.json -> JSON,
//                       anything else -> Prometheus text)
//   --blackbox-out DIR  flight-recorder postmortems also write JSONL dumps
//                       into DIR (blackbox_<session>_<reason>.jsonl)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/kalmmind.hpp"
#include "io/csv.hpp"
#include "linalg/simd/simd.hpp"
#include "neural/decode_quality.hpp"
#include "serve/serve.hpp"
#include "soc/soc_all.hpp"
#include "telemetry/telemetry.hpp"

using namespace kalmmind;

namespace {

// ---- global telemetry flags (any subcommand) ----

struct TelemetryOptions {
  std::string trace_out;     // non-empty => span tracing enabled
  std::string metrics_out;   // non-empty => dump registry on exit
  std::string blackbox_out;  // non-empty => postmortem JSONL dump directory
};

// Removes --trace-out/--metrics-out/--blackbox-out (and their values) from
// argv so the per-subcommand parsers never see them.  Exits on a missing
// value.
TelemetryOptions strip_telemetry_flags(int& argc, char** argv) {
  TelemetryOptions opt;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const bool trace = !std::strcmp(argv[i], "--trace-out");
    const bool metrics = !std::strcmp(argv[i], "--metrics-out");
    const bool blackbox = !std::strcmp(argv[i], "--blackbox-out");
    if (!trace && !metrics && !blackbox) {
      argv[out++] = argv[i];
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    (trace ? opt.trace_out : metrics ? opt.metrics_out : opt.blackbox_out) =
        argv[++i];
  }
  argc = out;
  if (!opt.trace_out.empty()) {
    telemetry::SpanTracer::global().set_enabled(true);
    telemetry::SpanTracer::global().set_thread_name("main");
  }
  if (!opt.blackbox_out.empty()) {
    telemetry::FlightRecorder::global().set_dump_dir(opt.blackbox_out);
  }
  return opt;
}

// Best-effort end-of-run dump; keeps the subcommand's exit code.
void flush_telemetry(const TelemetryOptions& opt) {
  if (!opt.trace_out.empty()) {
    telemetry::SpanTracer& tracer = telemetry::SpanTracer::global();
    if (tracer.write_json(opt.trace_out)) {
      std::printf("telemetry  : wrote %zu trace events to %s", tracer.size(),
                  opt.trace_out.c_str());
      if (tracer.dropped() > 0) {
        std::printf("  (%zu dropped at capacity)", tracer.dropped());
      }
      std::printf("\n");
    } else {
      std::fprintf(stderr, "telemetry: failed to write %s\n",
                   opt.trace_out.c_str());
    }
  }
  if (!opt.metrics_out.empty()) {
    auto& registry = telemetry::MetricsRegistry::global();
    const bool json = opt.metrics_out.size() >= 5 &&
                      opt.metrics_out.rfind(".json") ==
                          opt.metrics_out.size() - 5;
    const std::string text =
        json ? registry.json() : registry.prometheus_text();
    if (telemetry::write_text_file(opt.metrics_out, text)) {
      std::printf("telemetry  : wrote metrics (%s) to %s\n",
                  json ? "JSON" : "Prometheus text", opt.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "telemetry: failed to write %s\n",
                   opt.metrics_out.c_str());
    }
  }
}

// Run one modeled SoC invocation of the dataset with the cycle trace on,
// then merge its events onto the span timeline (soc::export_trace).
void trace_soc_invocation(const neural::NeuralDataset& dataset) {
  soc::SocParams params;
  soc::Soc chip(params);
  const std::size_t accel_id = chip.add_accelerator(
      "kalmmind0", hls::DatapathSpec{}, soc::TileCoord{1, 1});
  chip.trace().set_enabled(true);

  soc::EspDriver driver(chip, accel_id);
  soc::MemoryMap map =
      driver.write_invocation(dataset.model, dataset.test_measurements);
  core::AcceleratorConfig cfg = core::AcceleratorConfig::for_run(
      std::uint32_t(dataset.model.x_dim()),
      std::uint32_t(dataset.model.z_dim()),
      dataset.test_measurements.size());
  driver.configure(cfg);
  driver.start_and_wait(map);

  const std::size_t merged = soc::export_trace(
      chip.trace(), telemetry::SpanTracer::global(), params.hls.clock_hz);
  std::printf("telemetry  : bridged %zu SoC cycle events onto the trace\n",
              merged);
}

struct CliOptions {
  std::string dataset = "motor";
  std::string datapath = "gauss-newton";
  std::string dtype = "float32";
  std::uint32_t calc_freq = 0;
  std::uint32_t approx = 2;
  std::uint32_t policy = 1;
  std::size_t iterations = 100;
  std::uint64_t seed = 0;  // 0 = preset default
  std::string csv_prefix;
  bool breakdown = false;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset NAME] [--datapath NAME] [--dtype T]\n"
               "          [--calc-freq N] [--approx N] [--policy 0|1]\n"
               "          [--iterations N] [--seed N] [--csv PREFIX]\n"
               "          [--breakdown]\n"
               "       %s serve-bench ...   (see serve-bench --help)\n"
               "       %s cluster-bench ...  (see cluster-bench --help)\n"
               "       %s telemetry-demo [--dataset NAME] [--iterations N]\n"
               "       %s blackbox FILE [--session N] [--kind NAME] "
               "[--last N]\n"
               "       %s simd-info\n"
               "global: [--trace-out FILE] [--metrics-out FILE] "
               "[--blackbox-out DIR]\n",
               argv0, argv0, argv0, argv0, argv0, argv0);
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage_and_exit(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--dataset")) {
      opt.dataset = need_value("--dataset");
    } else if (!std::strcmp(argv[i], "--datapath")) {
      opt.datapath = need_value("--datapath");
    } else if (!std::strcmp(argv[i], "--dtype")) {
      opt.dtype = need_value("--dtype");
    } else if (!std::strcmp(argv[i], "--calc-freq")) {
      opt.calc_freq = std::uint32_t(std::atoi(need_value("--calc-freq")));
    } else if (!std::strcmp(argv[i], "--approx")) {
      opt.approx = std::uint32_t(std::atoi(need_value("--approx")));
    } else if (!std::strcmp(argv[i], "--policy")) {
      opt.policy = std::uint32_t(std::atoi(need_value("--policy")));
    } else if (!std::strcmp(argv[i], "--iterations")) {
      opt.iterations = std::size_t(std::atoll(need_value("--iterations")));
    } else if (!std::strcmp(argv[i], "--seed")) {
      opt.seed = std::uint64_t(std::atoll(need_value("--seed")));
    } else if (!std::strcmp(argv[i], "--csv")) {
      opt.csv_prefix = need_value("--csv");
    } else if (!std::strcmp(argv[i], "--breakdown")) {
      opt.breakdown = true;
    } else if (!std::strcmp(argv[i], "--help")) {
      usage_and_exit(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage_and_exit(argv[0]);
    }
  }
  return opt;
}

neural::DatasetSpec spec_for(const CliOptions& opt) {
  neural::DatasetSpec spec;
  if (opt.dataset == "motor") {
    spec = neural::motor_spec();
  } else if (opt.dataset == "somatosensory") {
    spec = neural::somatosensory_spec();
  } else if (opt.dataset == "hippocampus") {
    spec = neural::hippocampus_spec();
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", opt.dataset.c_str());
    std::exit(2);
  }
  spec.test_steps = opt.iterations;
  if (opt.seed != 0) spec.seed = opt.seed;
  return spec;
}

hls::NumericType dtype_for(const CliOptions& opt) {
  if (opt.dtype == "float32") return hls::NumericType::kFloat32;
  if (opt.dtype == "float64") return hls::NumericType::kFloat64;
  if (opt.dtype == "fx32") return hls::NumericType::kFx32;
  if (opt.dtype == "fx64") return hls::NumericType::kFx64;
  std::fprintf(stderr, "unknown dtype '%s'\n", opt.dtype.c_str());
  std::exit(2);
}

core::Accelerator accelerator_for(const CliOptions& opt,
                                  core::AcceleratorConfig cfg) {
  const auto dtype = dtype_for(opt);
  if (opt.datapath == "gauss-newton")
    return core::make_gauss_newton(cfg, dtype);
  if (opt.datapath == "cholesky-newton") return core::make_cholesky_newton(cfg);
  if (opt.datapath == "qr-newton") return core::make_qr_newton(cfg);
  if (opt.datapath == "lite") return core::make_lite(cfg, dtype);
  if (opt.datapath == "sskf") return core::make_sskf(cfg);
  if (opt.datapath == "sskf-newton") return core::make_sskf_newton(cfg);
  if (opt.datapath == "taylor") return core::make_taylor(cfg);
  if (opt.datapath == "gauss-only") return core::make_gauss_only(cfg);
  std::fprintf(stderr, "unknown datapath '%s'\n", opt.datapath.c_str());
  std::exit(2);
}

// ---- serve-bench: stream N sessions through the DecodeServer ----

struct ServeBenchOptions {
  std::string dataset = "motor";
  std::string strategy = "interleaved";
  std::size_t sessions = 8;
  unsigned workers = 0;  // 0 = hardware_concurrency
  std::size_t iterations = 100;
  std::uint32_t calc_freq = 0;
  std::uint32_t approx = 2;
  std::uint32_t policy = 1;
  bool batching = true;
};

[[noreturn]] void serve_usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s serve-bench [--dataset NAME] [--sessions N]\n"
               "          [--workers N] [--iterations N] [--strategy SPEC]\n"
               "          [--calc-freq N] [--approx N] [--policy 0|1]\n"
               "          [--no-batching]\n"
               "  SPEC is a StrategySpec string, e.g. \"gauss\",\n"
               "  \"newton(m=4)\", or\n"
               "  \"interleaved(calc=gauss,calc_freq=0,approx=2,policy=1)\";\n"
               "  --calc-freq/--approx/--policy apply to bare names only.\n",
               argv0);
  std::exit(2);
}

int run_serve_bench(int argc, char** argv) {
  ServeBenchOptions opt;
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        serve_usage_and_exit(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--dataset")) {
      opt.dataset = need_value("--dataset");
    } else if (!std::strcmp(argv[i], "--strategy")) {
      opt.strategy = need_value("--strategy");
    } else if (!std::strcmp(argv[i], "--sessions")) {
      opt.sessions = std::size_t(std::atoll(need_value("--sessions")));
    } else if (!std::strcmp(argv[i], "--workers")) {
      opt.workers = unsigned(std::atoi(need_value("--workers")));
    } else if (!std::strcmp(argv[i], "--iterations")) {
      opt.iterations = std::size_t(std::atoll(need_value("--iterations")));
    } else if (!std::strcmp(argv[i], "--calc-freq")) {
      opt.calc_freq = std::uint32_t(std::atoi(need_value("--calc-freq")));
    } else if (!std::strcmp(argv[i], "--approx")) {
      opt.approx = std::uint32_t(std::atoi(need_value("--approx")));
    } else if (!std::strcmp(argv[i], "--policy")) {
      opt.policy = std::uint32_t(std::atoi(need_value("--policy")));
    } else if (!std::strcmp(argv[i], "--no-batching")) {
      opt.batching = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      serve_usage_and_exit(argv[0]);
    }
  }

  if (opt.sessions == 0 || opt.iterations == 0) {
    std::fprintf(stderr, "--sessions and --iterations must be >= 1\n");
    return 2;
  }

  neural::DatasetSpec spec;
  if (opt.dataset == "motor") {
    spec = neural::motor_spec();
  } else if (opt.dataset == "somatosensory") {
    spec = neural::somatosensory_spec();
  } else if (opt.dataset == "hippocampus") {
    spec = neural::hippocampus_spec();
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", opt.dataset.c_str());
    return 2;
  }
  spec.test_steps = opt.iterations;
  const neural::NeuralDataset dataset = neural::build_dataset(spec);

  kalman::StrategySpec strategy;
  if (Status s = kalman::StrategySpec::try_parse(opt.strategy, &strategy);
      !s.ok()) {
    std::fprintf(stderr, "bad --strategy '%s': %s\n", opt.strategy.c_str(),
                 s.message());
    return 2;
  }
  if (opt.strategy.find('(') == std::string::npos) {
    // Bare name: the legacy interleave flags still apply.
    strategy.calc_freq = opt.calc_freq;
    strategy.approx = opt.approx;
    strategy.policy = opt.policy == 0
                          ? kalman::SeedPolicy::kLastCalculated
                          : kalman::SeedPolicy::kPreviousIteration;
  }

  serve::SessionConfig session_cfg;
  session_cfg.filter.model = dataset.model;
  session_cfg.filter.strategy = strategy;
  session_cfg.queue_capacity = opt.iterations;  // lossless for the bench
  if (Status s = session_cfg.check(); !s.ok()) {
    std::fprintf(stderr, "bad session config: %s\n", s.message());
    return 2;
  }

  serve::ServerOptions server_options;
  server_options.workers = opt.workers;
  server_options.max_batch = 8;
  server_options.batching = opt.batching;
  serve::DecodeServer server(server_options);
  std::vector<serve::SessionId> ids;
  for (std::size_t i = 0; i < opt.sessions; ++i) {
    Status status;
    const serve::SessionId id = server.open_session(session_cfg, &status);
    if (id == serve::DecodeServer::kInvalidSession) {
      std::fprintf(stderr, "open_session failed: %s\n", status.message());
      return 2;
    }
    ids.push_back(id);
  }

  std::printf("serve-bench: %zu sessions x %zu bins, dataset %s (z=%zu), "
              "strategy %s, %u workers, batching %s\n",
              opt.sessions, dataset.test_measurements.size(),
              dataset.spec.name.c_str(), dataset.model.z_dim(),
              strategy.format().c_str(), server.workers(),
              opt.batching ? "on" : "off");

  const auto t0 = std::chrono::steady_clock::now();
  // Round-robin across sessions: the arrival pattern of independent
  // streams hitting the server.
  for (std::size_t n = 0; n < dataset.test_measurements.size(); ++n) {
    for (const auto id : ids) {
      server.submit(id, dataset.test_measurements[n]);
    }
  }
  server.drain();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServerStats stats = server.stats();
  std::printf("%s", stats.to_string().c_str());
  std::printf("wall       : %.3f s  (%.1f steps/s, %.2f sessions/s)\n", wall,
              double(stats.total_steps) / wall, double(opt.sessions) / wall);

  // Cross-check one stream against the identical sequential filter.
  kalman::KalmanFilter<double> sequential = session_cfg.filter.make_filter();
  const auto seq = sequential.run(dataset.test_measurements);
  const auto served = server.trajectory(ids.front());
  bool identical = served.size() == seq.states.size();
  for (std::size_t n = 0; identical && n < served.size(); ++n) {
    for (std::size_t d = 0; d < served[n].size(); ++d) {
      if (served[n][d] != seq.states[n][d]) identical = false;
    }
  }
  std::printf("determinism: served trajectory %s sequential filter\n",
              identical ? "bit-identical to" : "DIVERGES from");

  // With tracing on, also model one SoC invocation of the same dataset so
  // the exported trace shows wall-clock serve spans next to SoC cycles.
  if (telemetry::SpanTracer::global().enabled()) {
    trace_soc_invocation(dataset);
  }
  return identical ? 0 : 1;
}

// ---- cluster-bench: sharded serving with a mid-stream migration ----

struct ClusterBenchOptions {
  std::string dataset = "motor";
  std::size_t shards = 4;
  std::size_t sessions = 8;
  std::size_t iterations = 200;
  bool migrate = true;  // drain one shard mid-stream, time the migration
};

[[noreturn]] void cluster_usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s cluster-bench [--dataset NAME] [--shards N]\n"
               "          [--sessions N] [--iterations N] [--no-migrate]\n"
               "  Streams N sessions through a ShardedDecodeServer (manual\n"
               "  pumping), optionally drain-migrating one shard mid-stream\n"
               "  and timing checkpoint+restore per session, then verifies\n"
               "  one trajectory bit-for-bit against a sequential filter.\n",
               argv0);
  std::exit(2);
}

int run_cluster_bench(int argc, char** argv) {
  ClusterBenchOptions opt;
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        cluster_usage_and_exit(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--dataset")) {
      opt.dataset = need_value("--dataset");
    } else if (!std::strcmp(argv[i], "--shards")) {
      opt.shards = std::size_t(std::atoll(need_value("--shards")));
    } else if (!std::strcmp(argv[i], "--sessions")) {
      opt.sessions = std::size_t(std::atoll(need_value("--sessions")));
    } else if (!std::strcmp(argv[i], "--iterations")) {
      opt.iterations = std::size_t(std::atoll(need_value("--iterations")));
    } else if (!std::strcmp(argv[i], "--no-migrate")) {
      opt.migrate = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      cluster_usage_and_exit(argv[0]);
    }
  }
  if (opt.shards == 0 || opt.sessions == 0 || opt.iterations == 0) {
    std::fprintf(stderr, "--shards/--sessions/--iterations must be >= 1\n");
    return 2;
  }

  neural::DatasetSpec spec;
  if (opt.dataset == "motor") {
    spec = neural::motor_spec();
  } else if (opt.dataset == "somatosensory") {
    spec = neural::somatosensory_spec();
  } else if (opt.dataset == "hippocampus") {
    spec = neural::hippocampus_spec();
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", opt.dataset.c_str());
    return 2;
  }
  spec.test_steps = opt.iterations;
  const neural::NeuralDataset dataset = neural::build_dataset(spec);

  serve::SessionConfig session_cfg;
  session_cfg.filter.model = dataset.model;
  session_cfg.filter.strategy.kind = kalman::StrategyKind::kInterleaved;
  session_cfg.filter.strategy.calc_freq = 3;
  session_cfg.filter.strategy.approx = 2;
  session_cfg.filter.strategy.policy = kalman::SeedPolicy::kPreviousIteration;
  session_cfg.queue_capacity = opt.iterations;  // lossless for the bench
  if (Status s = session_cfg.check(); !s.ok()) {
    std::fprintf(stderr, "bad session config: %s\n", s.message());
    return 2;
  }

  serve::ClusterOptions cluster_options;
  cluster_options.shards = opt.shards;
  cluster_options.high_watermark = opt.sessions * opt.iterations + 1;
  cluster_options.low_watermark = cluster_options.high_watermark / 2;
  Status cluster_status;
  serve::ShardedDecodeServer cluster(cluster_options, &cluster_status);
  if (!cluster_status.ok()) {
    std::fprintf(stderr, "bad cluster options: %s\n", cluster_status.message());
    return 2;
  }
  std::vector<serve::SessionId> ids;
  for (std::size_t i = 0; i < opt.sessions; ++i) {
    Status status;
    const serve::SessionId id = cluster.open_session(session_cfg, &status);
    if (id == serve::ShardedDecodeServer::kInvalidSession) {
      std::fprintf(stderr, "open_session failed: %s\n", status.message());
      return 2;
    }
    ids.push_back(id);
  }

  std::printf("cluster-bench: %zu shards, %zu sessions x %zu bins, dataset "
              "%s (x=%zu z=%zu)\n",
              opt.shards, opt.sessions, dataset.test_measurements.size(),
              dataset.spec.name.c_str(), dataset.model.x_dim(),
              dataset.model.z_dim());

  const std::size_t half = dataset.test_measurements.size() / 2;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t n = 0; n < half; ++n)
    for (const auto id : ids)
      (void)cluster.submit(id, dataset.test_measurements[n]);
  cluster.drain();

  double migrate_s = 0.0;
  if (opt.migrate) {
    const std::size_t victim = cluster.shard_of(ids.front());
    const auto m0 = std::chrono::steady_clock::now();
    if (Status s = cluster.drain_shard(victim); !s.ok()) {
      std::fprintf(stderr, "drain_shard failed: %s\n", s.message());
      return 2;
    }
    migrate_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - m0)
            .count();
  }

  for (std::size_t n = half; n < dataset.test_measurements.size(); ++n)
    for (const auto id : ids)
      (void)cluster.submit(id, dataset.test_measurements[n]);
  cluster.drain();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ClusterStats stats = cluster.stats();
  std::printf("%s", stats.to_string().c_str());
  std::printf("wall       : %.3f s  (%.1f steps/s)\n", wall,
              double(stats.decoded) / wall);
  if (opt.migrate && stats.sessions_migrated > 0) {
    std::printf("migration  : %llu sessions drained losslessly in %.3f ms "
                "(%.3f ms/session, checkpoint+restore+requeue)\n",
                (unsigned long long)stats.sessions_migrated, migrate_s * 1e3,
                migrate_s * 1e3 / double(stats.sessions_migrated));
  }

  // The survivability claim, checked live: the migrated stream must be
  // bit-identical to one uninterrupted sequential filter.
  kalman::KalmanFilter<double> sequential = session_cfg.filter.make_filter();
  const auto seq = sequential.run(dataset.test_measurements);
  const auto served = cluster.trajectory(ids.front());
  bool identical = served.size() == seq.states.size();
  for (std::size_t n = 0; identical && n < served.size(); ++n)
    for (std::size_t d = 0; d < served[n].size(); ++d)
      if (served[n][d] != seq.states[n][d]) identical = false;
  std::printf("determinism: migrated trajectory %s sequential filter\n",
              identical ? "bit-identical to" : "DIVERGES from");
  return identical ? 0 : 1;
}

// ---- blackbox: inspect flight-recorder postmortem dumps ----

[[noreturn]] void blackbox_usage_and_exit(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s blackbox FILE [--session N] [--kind NAME] [--last N]\n"
      "Pretty-prints a flight-recorder dump (blackbox_*.jsonl), optionally\n"
      "filtered to one session, one event kind, or the last N events.\n",
      argv0);
  std::exit(2);
}

int run_blackbox(int argc, char** argv) {
  std::string file;
  std::uint64_t session = 0;
  bool by_session = false;
  std::string kind_name;
  telemetry::FlightEventKind kind = telemetry::FlightEventKind::kHealthFault;
  std::size_t last = 0;
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--session")) {
      session = std::strtoull(need_value("--session"), nullptr, 10);
      by_session = true;
    } else if (!std::strcmp(argv[i], "--kind")) {
      kind_name = need_value("--kind");
    } else if (!std::strcmp(argv[i], "--last")) {
      last = std::size_t(std::atoll(need_value("--last")));
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      blackbox_usage_and_exit(argv[0]);
    } else if (file.empty()) {
      file = argv[i];
    } else {
      blackbox_usage_and_exit(argv[0]);
    }
  }
  if (file.empty()) blackbox_usage_and_exit(argv[0]);
  if (!kind_name.empty() &&
      !telemetry::parse_flight_event_kind(kind_name, kind)) {
    std::fprintf(stderr, "unknown event kind '%s'\n", kind_name.c_str());
    return 2;
  }

  std::ifstream in(file, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read %s\n", file.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::vector<telemetry::FlightEvent> events =
      telemetry::parse_jsonl(ss.str());
  const std::size_t parsed = events.size();

  std::vector<telemetry::FlightEvent> kept;
  kept.reserve(events.size());
  for (const telemetry::FlightEvent& e : events) {
    if (by_session && e.session != session) continue;
    if (!kind_name.empty() && e.kind != kind) continue;
    kept.push_back(e);
  }
  if (last > 0 && kept.size() > last) {
    kept.erase(kept.begin(), kept.end() - std::ptrdiff_t(last));
  }

  std::printf("%14s %8s %6s  %-19s %12s %12s  %s\n", "ts_us", "session",
              "step", "kind", "arg", "value", "detail");
  std::map<std::string, std::size_t> by_kind;
  for (const telemetry::FlightEvent& e : kept) {
    std::printf("%14.3f %8llu %6llu  %-19s %12llu %12g  %s\n", e.ts_us,
                static_cast<unsigned long long>(e.session),
                static_cast<unsigned long long>(e.step),
                telemetry::to_string(e.kind),
                static_cast<unsigned long long>(e.arg), e.value, e.detail);
    ++by_kind[telemetry::to_string(e.kind)];
  }
  std::printf("blackbox   : %zu of %zu events from %s\n", kept.size(), parsed,
              file.c_str());
  for (const auto& [name, count] : by_kind) {
    std::printf("             %-19s %zu\n", name.c_str(), count);
  }
  return 0;
}

// ---- telemetry-demo: exercise every instrumented layer ----

int run_telemetry_demo(int argc, char** argv) {
  std::string dataset_name = "motor";
  std::size_t iterations = 50;
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--dataset")) {
      dataset_name = need_value("--dataset");
    } else if (!std::strcmp(argv[i], "--iterations")) {
      iterations = std::size_t(std::atoll(need_value("--iterations")));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  neural::DatasetSpec spec;
  if (dataset_name == "motor") {
    spec = neural::motor_spec();
  } else if (dataset_name == "somatosensory") {
    spec = neural::somatosensory_spec();
  } else if (dataset_name == "hippocampus") {
    spec = neural::hippocampus_spec();
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset_name.c_str());
    return 2;
  }
  spec.test_steps = iterations == 0 ? 1 : iterations;
  const neural::NeuralDataset dataset = neural::build_dataset(spec);

  // Tracing is on regardless of --trace-out here — the demo's whole point
  // is producing a trace (default file names if no global flags given).
  telemetry::SpanTracer::global().set_enabled(true);
  telemetry::SpanTracer::global().set_thread_name("main");

  // 1. Library-level filter: phase spans + strategy/Newton counters, plus
  // the workspace gauges of the allocation-free hot path.  Printed while
  // the filter is alive: kalmmind.kf.workspace_bytes tracks live filters
  // and retires each contribution on destruction.
  {
    telemetry::Span span("demo.filter_run", "demo");
    kalman::KalmanFilter<double> filter(
        dataset.model, kalman::make_inverse_strategy<double>("interleaved"));
    filter.run(dataset.test_measurements);
    auto& registry = telemetry::MetricsRegistry::global();
    std::printf(
        "workspace  : kalmmind.kf.workspace_bytes=%.0f "
        "(this filter: %zu), kalmmind.kf.step_allocations_total=%llu\n",
        registry.gauge("kalmmind.kf.workspace_bytes").value(),
        filter.workspace_bytes(),
        static_cast<unsigned long long>(
            registry.counter("kalmmind.kf.step_allocations_total").value()));
  }

  // 2. Decode server: session spans, queue-depth counter track, latency
  // histogram — and the PR6 batched-serving path: two distinct filter
  // configs, two sessions each, so the gain-schedule cache sees one miss +
  // one hit per config and both pairs decode through fused BatchGroups.
  {
    telemetry::Span span("demo.serve_run", "demo");
    serve::SessionConfig cfg;
    cfg.filter.model = dataset.model;
    cfg.filter.strategy.kind = kalman::StrategyKind::kGauss;
    cfg.queue_capacity = dataset.test_measurements.size();
    serve::SessionConfig cfg2 = cfg;
    cfg2.filter.strategy.kind = kalman::StrategyKind::kInterleaved;
    cfg2.filter.strategy.calc_freq = 3;
    cfg2.filter.strategy.approx = 2;
    serve::DecodeServer server({/*workers=*/2, /*max_batch=*/8});
    const serve::SessionId a = server.open_session(cfg);
    const serve::SessionId b = server.open_session(cfg);
    const serve::SessionId c = server.open_session(cfg2);
    const serve::SessionId d = server.open_session(cfg2);
    for (const auto& z : dataset.test_measurements) {
      server.submit(a, z);
      server.submit(b, z);
      server.submit(c, z);
      server.submit(d, z);
    }
    server.drain();
    const serve::ServerStats stats = server.stats();
    std::printf("%s", stats.to_string().c_str());
    std::printf(
        "batching   : batched_sessions=%zu batch_groups=%zu gain_cache "
        "hits=%llu misses=%llu evictions=%llu\n",
        stats.batched_sessions, stats.batch_groups,
        static_cast<unsigned long long>(stats.gain_cache_hits),
        static_cast<unsigned long long>(stats.gain_cache_misses),
        static_cast<unsigned long long>(stats.gain_cache_evictions));

    // 2b. Flight recorder: every batch join / cache hit / cache miss above
    // was journaled; demo a postmortem of the first session so --blackbox-out
    // produces a JSONL dump to feed `kalmmind blackbox`.
    auto& blackbox = telemetry::FlightRecorder::global();
    std::uint64_t journaled = 0;
    const std::vector<std::uint64_t> recorded = blackbox.sessions();
    for (const std::uint64_t s : recorded) {
      journaled += blackbox.total_recorded(s);
    }
    std::printf("blackbox   : %llu events journaled across %zu sessions\n",
                static_cast<unsigned long long>(journaled), recorded.size());
    if (blackbox.enabled()) {
      const std::string path = blackbox.postmortem(a, "demo");
      if (!path.empty()) {
        std::printf("blackbox   : wrote postmortem %s\n", path.c_str());
      }
    }
  }
  if (!telemetry::kCompiledIn) {
    std::printf("telemetry  : compiled out (KALMMIND_TELEMETRY=OFF)\n");
  }

  // 3. SoC invocation bridged onto the same timeline.
  trace_soc_invocation(dataset);

  std::printf("telemetry-demo: %zu bins of %s through filter + server + SoC\n",
              dataset.test_measurements.size(), dataset.spec.name.c_str());
  return 0;
}

// ---- simd-info: report the runtime kernel dispatch resolution ----

int run_simd_info() {
  const linalg::simd::DispatchInfo info = linalg::simd::dispatch_info();
  std::printf("detected   : %s\n", linalg::simd::tier_name(info.detected));
  std::printf("active     : %s\n", linalg::simd::tier_name(info.active));
  std::string avail;
  for (const linalg::simd::Tier t : linalg::simd::available_tiers()) {
    if (!avail.empty()) avail += " ";
    avail += linalg::simd::tier_name(t);
  }
  std::printf("available  : %s\n", avail.c_str());
  if (info.env.empty()) {
    std::printf("env        : KALMMIND_SIMD unset\n");
  } else {
    std::printf("env        : KALMMIND_SIMD=%.*s (%s)\n",
                int(info.env.size()), info.env.data(),
                info.env_applied ? "applied" : "ignored: unknown or "
                                               "unavailable on this host");
  }
  std::printf("gauge      : kalmmind.linalg.simd_tier = %d\n",
              static_cast<int>(info.active));
  return 0;
}

}  // namespace

namespace {

int run_single(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  const TelemetryOptions telemetry_opt = strip_telemetry_flags(argc, argv);
  int rc;
  if (argc > 1 && !std::strcmp(argv[1], "serve-bench")) {
    rc = run_serve_bench(argc, argv);
  } else if (argc > 1 && !std::strcmp(argv[1], "cluster-bench")) {
    rc = run_cluster_bench(argc, argv);
  } else if (argc > 1 && !std::strcmp(argv[1], "blackbox")) {
    rc = run_blackbox(argc, argv);
  } else if (argc > 1 && !std::strcmp(argv[1], "simd-info")) {
    rc = run_simd_info();
  } else if (argc > 1 && !std::strcmp(argv[1], "telemetry-demo")) {
    // Demo defaults: always write a trace/metrics pair if no global flags.
    TelemetryOptions demo = telemetry_opt;
    if (demo.trace_out.empty()) demo.trace_out = "kalmmind_trace.json";
    if (demo.metrics_out.empty()) demo.metrics_out = "kalmmind_metrics.prom";
    rc = run_telemetry_demo(argc, argv);
    flush_telemetry(demo);
    return rc;
  } else {
    rc = run_single(argc, argv);
  }
  flush_telemetry(telemetry_opt);
  return rc;
}

namespace {

int run_single(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);

  auto dataset = neural::build_dataset(spec_for(opt));
  auto reference = core::to_double_trajectory(
      kalman::run_reference(dataset.model, dataset.test_measurements).states);

  auto cfg = core::AcceleratorConfig::for_run(
      std::uint32_t(dataset.model.x_dim()),
      std::uint32_t(dataset.model.z_dim()),
      dataset.test_measurements.size());
  cfg.calc_freq = opt.calc_freq;
  cfg.approx = opt.approx;
  cfg.policy = opt.policy;

  core::Accelerator accel = accelerator_for(opt, cfg);
  auto run = accel.run(dataset.model, dataset.test_measurements);
  auto metrics = core::compare_trajectories(reference, run.states);
  auto quality = neural::assess_decode(run.states, dataset.test_kinematics);

  std::printf("dataset    : %s (x=%zu z=%zu, %zu iterations)\n",
              dataset.spec.name.c_str(), dataset.model.x_dim(),
              dataset.model.z_dim(), dataset.test_measurements.size());
  std::printf("datapath   : %s  [%s]\n", accel.spec().name().c_str(),
              cfg.to_string().c_str());
  std::printf("accuracy   : MSE %s  MAE %s  MAX-DIFF %s%%  (vs float64 "
              "reference)\n",
              core::sci(metrics.mse).c_str(), core::sci(metrics.mae).c_str(),
              core::sci(metrics.max_diff_pct).c_str());
  std::printf("decode     : velocity corr %.3f  position corr %.3f  "
              "velocity RMSE %.3f\n",
              quality.velocity_correlation, quality.position_correlation,
              quality.velocity_rmse);
  std::printf("latency    : %.4f s (%llu cycles @ %.0f MHz)\n", run.seconds,
              (unsigned long long)run.latency.total_cycles,
              accel.params().clock_hz / 1e6);
  std::printf("power      : %.3f W   energy: %.4f J\n", run.power_w,
              run.energy_j);
  std::printf("resources  : %llu LUT  %llu FF  %.1f BRAM  %llu DSP\n",
              (unsigned long long)run.resources.lut,
              (unsigned long long)run.resources.ff, run.resources.bram,
              (unsigned long long)run.resources.dsp);
  if (run.fixed_point_saturations) {
    std::printf("WARNING    : %llu fixed-point saturations\n",
                (unsigned long long)run.fixed_point_saturations);
  }

  if (opt.breakdown) {
    hls::LatencyModel lat(accel.params());
    auto report = hls::build_latency_report(lat, accel.spec(),
                                            dataset.model.x_dim(),
                                            dataset.model.z_dim(), run.events);
    std::printf("\n%s", report.to_string().c_str());
  }

  if (!opt.csv_prefix.empty()) {
    const std::string path = opt.csv_prefix + "_trajectory.csv";
    io::write_trajectory_csv_file(path, run.states,
                                  {"px", "py", "vx", "vy", "ax", "ay"});
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
