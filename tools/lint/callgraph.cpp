#include "callgraph.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace kalmmind::lint {

std::string FunctionDef::display() const {
  std::string out;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (i == 0 && segs[i] == "kalmmind") continue;  // implied project root
    if (!out.empty()) out += "::";
    out += segs[i];
  }
  return out;
}

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

const std::set<std::string>& non_call_keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",     "switch",        "catch",
      "return",   "co_return","sizeof",    "static_assert", "assert",
      "defined",  "noexcept", "alignof",   "alignas",       "decltype",
      "operator", "this",     "new",       "delete",        "throw",
      "else",     "do",       "case",      "template",      "typename",
      "requires", "constexpr"};
  return kw;
}

// Scan backwards from `pos` (exclusive) over an optional `<...>` template
// argument group and a `::`-qualified identifier.  Returns the segments
// (outermost first) or empty when no identifier precedes `pos`; when
// `begin_out` is given it receives the offset of the identifier's first
// character.
std::vector<std::string> ident_before(const std::string& text,
                                      std::size_t pos,
                                      std::size_t* begin_out = nullptr) {
  std::size_t i = pos;
  while (i > 0 && (text[i - 1] == ' ' || text[i - 1] == '\t' ||
                   text[i - 1] == '\n')) {
    --i;
  }
  // Skip one balanced <...> group (template arguments on the callee).
  if (i > 0 && text[i - 1] == '>') {
    int depth = 0;
    std::size_t j = i;
    while (j > 0) {
      const char c = text[j - 1];
      if (c == '>') ++depth;
      if (c == '<' && --depth == 0) {
        --j;
        break;
      }
      // A template argument list has no parens/semicolons in this repo;
      // bail out if this looks like a comparison instead.
      if (c == '(' || c == ')' || c == ';' || c == '{' || c == '}') {
        return {};
      }
      --j;
    }
    if (depth != 0) return {};
    i = j;
  }
  std::vector<std::string> segs;
  for (;;) {
    std::size_t end = i;
    while (i > 0 && ident_char(text[i - 1])) --i;
    if (end == i) return {};  // no identifier here
    segs.insert(segs.begin(), text.substr(i, end - i));
    if (i >= 2 && text[i - 1] == ':' && text[i - 2] == ':') {
      i -= 2;
      // `::foo` with nothing before it (global qualifier): stop.
      if (i == 0 || !ident_char(text[i - 1])) break;
      continue;
    }
    break;
  }
  if (!segs.empty() &&
      std::isdigit(static_cast<unsigned char>(segs.front()[0]))) {
    return {};
  }
  if (begin_out != nullptr) *begin_out = i;
  return segs;
}

// Is the identifier starting at `begin` a member-access expression
// (`recv.name` / `recv->name`)?  If so, also extract the receiver ident
// when it is trivially visible (not `)`/`]` from a call or index).
bool member_access_before(const std::string& text, std::size_t begin,
                          std::string* receiver, bool* arrow = nullptr) {
  std::size_t i = begin;
  if (i >= 1 && text[i - 1] == '.') {
    i -= 1;
  } else if (i >= 2 && text[i - 1] == '>' && text[i - 2] == '-') {
    i -= 2;
    if (arrow != nullptr) *arrow = true;
  } else {
    return false;
  }
  std::size_t end = i;
  while (i > 0 && ident_char(text[i - 1])) --i;
  if (end > i) *receiver = text.substr(i, end - i);
  return true;
}

// The text since the last `{`, `}` or `;` — the scope header being opened.
struct ChunkClass {
  enum Kind { kNamespace, kClass, kFunction, kOther } kind = kOther;
  std::vector<std::string> segs;  // namespace/class/function name segments
  std::size_t name_pos = 0;       // offset of the function name in `text`
  bool realtime = false;
};

// Find the first '(' at paren-depth 0 of the chunk that is directly
// preceded by a (possibly qualified) identifier — the function-definition
// heuristic shared with the R1 recursion scan.
bool classify_function(const std::string& text, std::size_t begin,
                       std::size_t end, ChunkClass& out) {
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (c == ')') {
      if (depth > 0) --depth;
      continue;
    }
    if (c != '(') continue;
    if (depth > 0) {
      ++depth;
      continue;
    }
    std::size_t begin = 0;
    auto segs = ident_before(text, i, &begin);
    if (segs.empty() || non_call_keywords().count(segs.back())) {
      ++depth;
      continue;
    }
    // `cohort.push_back({...})` — a member-access expression with a
    // brace-init argument is a call, never a definition.
    std::string receiver;
    if (member_access_before(text, begin, &receiver)) {
      ++depth;
      continue;
    }
    out.kind = ChunkClass::kFunction;
    out.segs = std::move(segs);
    out.name_pos = i;
    return true;
  }
  return false;
}

std::vector<std::string> split_scopes(const std::string& name) {
  std::vector<std::string> segs;
  std::size_t start = 0;
  while (start <= name.size()) {
    std::size_t pos = name.find("::", start);
    if (pos == std::string::npos) {
      if (start < name.size()) segs.push_back(name.substr(start));
      break;
    }
    if (pos > start) segs.push_back(name.substr(start, pos - start));
    start = pos + 2;
  }
  return segs;
}

ChunkClass classify_chunk(const std::string& text, std::size_t begin,
                          std::size_t end) {
  ChunkClass out;
  const std::string chunk = text.substr(begin, end - begin);
  out.realtime = chunk.find("KALMMIND_REALTIME") != std::string::npos;

  // namespace header: `namespace a::b` (or anonymous) at the chunk's end.
  {
    std::size_t tail = chunk.find_last_not_of(" \t\n");
    std::string trimmed =
        tail == std::string::npos ? std::string() : chunk.substr(0, tail + 1);
    std::size_t ns = trimmed.rfind("namespace");
    if (ns != std::string::npos &&
        (ns == 0 || !ident_char(trimmed[ns - 1]))) {
      std::string after = trimmed.substr(ns + 9);
      // Everything after `namespace` must be the (optional) name.
      bool name_only = true;
      std::string name;
      for (char c : after) {
        if (ident_char(c) || c == ':') {
          name += c;
        } else if (c != ' ' && c != '\t' && c != '\n') {
          name_only = false;
          break;
        }
      }
      if (name_only) {
        out.kind = ChunkClass::kNamespace;
        out.segs = split_scopes(name);
        return out;
      }
    }
  }

  if (classify_function(text, begin, end, out)) return out;

  // class/struct/enum-class header: take the LAST keyword so template
  // parameter lists (`template <class T>`) don't shadow the real name.
  for (std::size_t pos = chunk.size(); pos > 0;) {
    std::size_t c = chunk.rfind("class", pos - 1);
    std::size_t s = chunk.rfind("struct", pos - 1);
    std::size_t u = chunk.rfind("union", pos - 1);
    std::size_t k = std::string::npos;
    std::size_t klen = 0;
    for (auto [p, len] : {std::pair{c, std::size_t(5)},
                          std::pair{s, std::size_t(6)},
                          std::pair{u, std::size_t(5)}}) {
      if (p != std::string::npos && (k == std::string::npos || p > k)) {
        k = p;
        klen = len;
      }
    }
    if (k == std::string::npos) break;
    pos = k;
    if (k > 0 && ident_char(chunk[k - 1])) continue;  // substring of ident
    std::size_t i = k + klen;
    while (i < chunk.size() && std::isspace(static_cast<unsigned char>(
                                   chunk[i]))) {
      ++i;
    }
    // Skip alignas(...) between the keyword and the name.
    if (chunk.compare(i, 7, "alignas") == 0) {
      std::size_t close = chunk.find(')', i);
      if (close == std::string::npos) break;
      i = close + 1;
      while (i < chunk.size() && std::isspace(static_cast<unsigned char>(
                                     chunk[i]))) {
        ++i;
      }
    }
    std::size_t name_begin = i;
    while (i < chunk.size() && ident_char(chunk[i])) ++i;
    if (i > name_begin) {
      out.kind = ChunkClass::kClass;
      out.segs = {chunk.substr(name_begin, i - name_begin)};
      return out;
    }
    break;
  }

  out.kind = ChunkClass::kOther;
  return out;
}

}  // namespace

std::vector<FunctionDef> extract_functions(
    const std::string& rel_path, const std::vector<std::string>& code,
    std::set<std::string>* class_names) {
  // Flatten into one buffer, blanking preprocessor lines so `#if
  // defined(X)` never reads as a call and conditional braces cannot
  // unbalance the scope stack.
  std::string text;
  std::vector<std::size_t> line_start;
  line_start.reserve(code.size());
  for (const std::string& line : code) {
    line_start.push_back(text.size());
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') {
      text.append(line.size(), ' ');
    } else {
      text += line;
    }
    text += '\n';
  }
  auto line_of = [&](std::size_t off) {
    auto it = std::upper_bound(line_start.begin(), line_start.end(), off);
    return std::size_t(it - line_start.begin()) - 1;
  };

  struct Scope {
    ChunkClass::Kind kind = ChunkClass::kOther;
    std::size_t n_segs = 0;      // segments this scope pushed
    std::size_t func_index = std::size_t(-1);
  };
  std::vector<Scope> stack;
  std::vector<std::string> scope_segs;
  std::vector<FunctionDef> funcs;
  struct Extent {
    std::size_t begin = 0, end = 0;  // body offsets (exclusive of braces)
  };
  std::vector<Extent> extents;

  std::size_t chunk_begin = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == ';') {
      chunk_begin = i + 1;
    } else if (c == '{') {
      ChunkClass cc = classify_chunk(text, chunk_begin, i);
      Scope scope;
      scope.kind = cc.kind;
      if (cc.kind == ChunkClass::kNamespace || cc.kind == ChunkClass::kClass) {
        if (cc.kind == ChunkClass::kClass && class_names != nullptr) {
          for (const auto& s : cc.segs) class_names->insert(s);
        }
        scope.n_segs = cc.segs.size();
        for (auto& s : cc.segs) scope_segs.push_back(std::move(s));
      } else if (cc.kind == ChunkClass::kFunction) {
        FunctionDef fn;
        fn.segs = scope_segs;
        for (auto& s : cc.segs) fn.segs.push_back(std::move(s));
        fn.file = rel_path;
        fn.line = line_of(cc.name_pos);
        fn.body_begin = line_of(i);
        fn.realtime = cc.realtime;
        scope.func_index = funcs.size();
        funcs.push_back(std::move(fn));
        extents.push_back({i + 1, i + 1});
      }
      stack.push_back(scope);
      chunk_begin = i + 1;
    } else if (c == '}') {
      if (!stack.empty()) {
        const Scope& scope = stack.back();
        if (scope.func_index != std::size_t(-1)) {
          funcs[scope.func_index].body_end = line_of(i);
          extents[scope.func_index].end = i;
        }
        scope_segs.resize(scope_segs.size() - scope.n_segs);
        stack.pop_back();
      }
      chunk_begin = i + 1;
    }
  }
  // Unterminated bodies (truncated file): close at EOF.
  for (std::size_t f = 0; f < funcs.size(); ++f) {
    if (extents[f].end < extents[f].begin) {
      extents[f].end = text.size();
      funcs[f].body_end = code.empty() ? 0 : code.size() - 1;
    }
  }

  // Call-site extraction: find `ident(` / `a::b(` / `ident<T>(` matches and
  // attribute each to the innermost function body containing it.
  auto owner_of = [&](std::size_t off) {
    std::size_t best = std::size_t(-1);
    std::size_t best_span = std::size_t(-1);
    for (std::size_t f = 0; f < funcs.size(); ++f) {
      if (off < extents[f].begin || off >= extents[f].end) continue;
      const std::size_t span = extents[f].end - extents[f].begin;
      if (span < best_span) {
        best = f;
        best_span = span;
      }
    }
    return best;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '(') continue;
    std::size_t begin = 0;
    auto segs = ident_before(text, i, &begin);
    if (segs.empty() || non_call_keywords().count(segs.back())) continue;
    const std::size_t owner = owner_of(i);
    if (owner == std::size_t(-1)) continue;
    CallSite site;
    site.line = line_of(i);
    site.member_access =
        member_access_before(text, begin, &site.receiver, &site.arrow);
    site.segs = std::move(segs);
    funcs[owner].calls.push_back(std::move(site));
  }

  return funcs;
}

}  // namespace kalmmind::lint
