// Heuristic function-level call-graph extraction for kalmmind-rtcheck.
//
// This is not a compiler: it is a brace-and-regex scanner over the same
// comment-stripped text the line linter uses, tuned to the repo's idiom
// (clang-format'ed C++20, one class per scope, no macros that open
// braces).  It recovers, per translation unit:
//
//   * function *definitions* with their scope-qualified names
//     (`kalmmind::kalman::KalmanFilter::step`), body extents, and whether
//     the signature carries the KALMMIND_REALTIME annotation;
//   * call sites inside each body, with whatever qualifier the call spells
//     (`linalg::multiply_into`, `invert_into`, `detail::classic_seed_into`).
//
// Call resolution is name-based and deliberately conservative: an
// unqualified call resolves to *every* known function with that terminal
// name (virtual dispatch, overloads and shadowing all collapse to the
// union), while a qualified call only resolves to functions whose
// qualified name ends with the spelled segments — which is what keeps
// `linalg::multiply_into` from resolving into `linalg::naive::
// multiply_into`.  Unknown names (std::, libc, not-yet-seen) resolve to
// nothing and end the walk, mirroring how RTSan treats uninstrumented
// leaves.  The known blind spots — operator overloads, implicit
// copy-assignment, destructors — are why the dynamic RTSan pass
// (KALMMIND_RTSAN) exists as the complementary oracle.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace kalmmind::lint {

struct CallSite {
  std::size_t line = 0;            // 0-based line index in the file
  std::vector<std::string> segs;   // qualifier segments + terminal name
  bool member_access = false;      // spelled `recv.name(` or `recv->name(`
  bool arrow = false;              // `->` (pointer/smart-pointer) access
  std::string receiver;            // the `recv` ident when trivially visible
};

struct FunctionDef {
  std::vector<std::string> segs;  // enclosing scopes + name, outermost first
  std::string file;               // rel path (generic) of the definition
  std::size_t file_index = 0;     // index into the analyzer's file list
  std::size_t line = 0;           // 0-based line index of the signature
  std::size_t body_begin = 0;     // 0-based line of the opening brace
  std::size_t body_end = 0;       // 0-based line of the closing brace
  bool realtime = false;          // signature carries KALMMIND_REALTIME
  std::vector<CallSite> calls;

  const std::string& short_name() const { return segs.back(); }
  // Human-readable qualified name without the project root namespace.
  std::string display() const;
};

// Extract every function definition (with call sites) from one file.
// `code` is the comment/literal-stripped text (source_model.hpp);
// line indexes refer into it.  When `class_names` is given, every
// class/struct scope name encountered is added to it — the analyzer uses
// the set to tell member functions from free functions across files
// (out-of-line definitions included).
std::vector<FunctionDef> extract_functions(
    const std::string& rel_path, const std::vector<std::string>& code,
    std::set<std::string>* class_names = nullptr);

}  // namespace kalmmind::lint
