#include "lint.hpp"

#include <algorithm>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "source_model.hpp"

namespace kalmmind::lint {

namespace {

// ---------------------------------------------------------------------------
// R1: HLS-synthesizable subset.
// ---------------------------------------------------------------------------

struct BannedPattern {
  std::regex re;
  const char* what;
};

const std::vector<BannedPattern>& hls_banned() {
  static const std::vector<BannedPattern> patterns = [] {
    std::vector<BannedPattern> p;
    auto add = [&p](const char* re, const char* what) {
      p.push_back({std::regex(re), what});
    };
    add(R"((^|[^\w])new[\s(])", "dynamic allocation (new)");
    add(R"((^|[^\w])delete[\s[(])", "dynamic deallocation (delete)");
    add(R"(\b(malloc|calloc|realloc|free)\s*\()", "C heap allocation");
    add(R"(std::(vector|string|map|unordered_map|set|unordered_set|deque|)"
        R"(list|function|any|variant|shared_ptr|unique_ptr|make_unique|)"
        R"(make_shared)\b)",
        "heap-backed std:: type");
    add(R"(\bthrow\b)", "exception (throw)");
    add(R"(\btry\b\s*\{)", "exception handling (try)");
    add(R"(\bvirtual\b)", "virtual dispatch");
    add(R"(\bgoto\b)", "goto");
    add(R"(while\s*\(\s*(true|1)\s*\))", "unbounded loop (while true)");
    add(R"(for\s*\(\s*;\s*;\s*\))", "unbounded loop (for ;;)");
    return p;
  }();
  return patterns;
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",         "switch", "catch",
      "return", "sizeof", "static_assert", "new",    "delete",
      "else",   "do",     "alignof",       "decltype"};
  return kw;
}

// Direct-recursion scan: find `name(...) ... {` definitions, brace-match the
// body, flag `name(` inside it.  Heuristic: member-init-list constructors
// and parameter lists containing parentheses are not matched (constructors
// cannot usefully recurse; HLS code takes plain scalar/array parameters).
void check_recursion(const std::vector<std::string>& code,
                     const std::filesystem::path& rel_path,
                     const Suppressions& sup, std::vector<Finding>& out) {
  std::string text;
  std::vector<std::size_t> line_start;  // byte offset of each line
  for (const auto& line : code) {
    line_start.push_back(text.size());
    text += line;
    text += '\n';
  }
  auto line_of = [&](std::size_t off) {
    auto it = std::upper_bound(line_start.begin(), line_start.end(), off);
    return std::size_t(it - line_start.begin()) - 1;
  };

  static const std::regex kDef(
      R"(([A-Za-z_]\w*)\s*\(([^()]*)\)\s*(const\s*)?(noexcept\s*)?\{)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kDef);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (control_keywords().count(name)) continue;
    // Find the opening brace of this match, then its matching close.
    std::size_t open = std::size_t(it->position()) + it->length() - 1;
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < text.size(); ++i) {
      if (text[i] == '{') ++depth;
      if (text[i] == '}' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string::npos) continue;
    const std::regex self_call("(^|[^\\w.:])" + name + "\\s*\\(");
    const std::string body = text.substr(open + 1, close - open - 1);
    for (auto call = std::sregex_iterator(body.begin(), body.end(), self_call);
         call != std::sregex_iterator(); ++call) {
      const std::size_t off = open + 1 + std::size_t(call->position());
      const std::size_t line_idx = line_of(off);
      if (sup.allows("R1", line_idx)) continue;
      out.push_back({rel_path.generic_string(), int(line_idx) + 1, "R1",
                     "recursive call to '" + name +
                         "' (recursion is not synthesizable)"});
      break;  // one finding per function is enough
    }
  }
}

void check_hls_subset(const std::vector<std::string>& code,
                      const std::filesystem::path& rel_path,
                      const Suppressions& sup, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (sup.allows("R1", i)) continue;
    for (const auto& banned : hls_banned()) {
      if (std::regex_search(code[i], banned.re)) {
        out.push_back({rel_path.generic_string(), int(i) + 1, "R1",
                       std::string(banned.what) +
                           " is outside the HLS-synthesizable subset"});
      }
    }
  }
  check_recursion(code, rel_path, sup, out);
}

// ---------------------------------------------------------------------------
// R2: Status discipline.
// ---------------------------------------------------------------------------

void check_status_discipline(const std::vector<std::string>& code,
                             const std::filesystem::path& rel_path,
                             const Suppressions& sup,
                             std::vector<Finding>& out) {
  static const std::regex kStatusDecl(
      R"((^|[^:\w])Status\s+([A-Za-z_][\w:]*)\s*\()");
  static const std::regex kDiscardedCheck(
      R"(^\s*[\w.:>\-\[\]()]*\bcheck\s*\(\s*\)\s*;\s*$)");
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(code[i], m, kStatusDecl) && !sup.allows("R2", i)) {
      bool annotated = code[i].find("[[nodiscard]]") != std::string::npos;
      // Look back over attribute/template/qualifier lines.
      for (std::size_t back = i; !annotated && back > 0;) {
        --back;
        const std::string& prev = code[back];
        if (prev.find("[[nodiscard]]") != std::string::npos) annotated = true;
        // Stop at the previous statement boundary.
        if (prev.find(';') != std::string::npos ||
            prev.find('}') != std::string::npos)
          break;
        if (prev.find_first_not_of(" \t") == std::string::npos) continue;
        break;
      }
      if (!annotated) {
        out.push_back({rel_path.generic_string(), int(i) + 1, "R2",
                       "Status-returning '" + m[2].str() +
                           "' must be declared [[nodiscard]]"});
      }
    }
    if (std::regex_match(code[i], kDiscardedCheck) && !sup.allows("R2", i)) {
      out.push_back({rel_path.generic_string(), int(i) + 1, "R2",
                     "result of check() is discarded (test it or use "
                     "validate())"});
    }
  }
}

// ---------------------------------------------------------------------------
// R3: fixed-point literal discipline.
// ---------------------------------------------------------------------------

void check_fixed_literals(const std::vector<std::string>& code,
                          const std::filesystem::path& rel_path,
                          const Suppressions& sup, std::vector<Finding>& out) {
  static const std::regex kFloatLiteral(
      R"((^|[^\w.])((\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fFlL]?\b)");
  static const char* kExplicitContexts[] = {"double", "float", "to_double",
                                            "from_double", "fixed_cast"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (sup.allows("R3", i)) continue;
    if (!std::regex_search(code[i], kFloatLiteral)) continue;
    bool explicit_context = false;
    for (const char* ctx : kExplicitContexts) {
      if (code[i].find(ctx) != std::string::npos) {
        explicit_context = true;
        break;
      }
    }
    if (!explicit_context) {
      out.push_back({rel_path.generic_string(), int(i) + 1, "R3",
                     "raw floating-point literal in fixed-point code needs "
                     "an explicit double context or fixed_cast"});
    }
  }
}

// ---------------------------------------------------------------------------
// R4: telemetry discipline.
// ---------------------------------------------------------------------------

void check_telemetry_guard(const std::vector<std::string>& raw,
                           const std::vector<std::string>& code,
                           const std::filesystem::path& rel_path,
                           const Suppressions& sup,
                           std::vector<Finding>& out) {
  static const std::regex kDirectInclude(
      R"(#\s*include\s*"telemetry/(registry|tracer|flight_recorder)\.hpp")");
  // Allocation-bearing tracer emissions and flight-recorder journal calls
  // (the convention names recorder locals `blackbox`, keeping them distinct
  // from serve's LatencyRecorder locals named `recorder`).
  static const std::regex kEmission(
      R"(\btracer\s*(\.|->)\s*(complete|counter|instant)\s*\(|)"
      R"(\bblackbox\s*(\.|->)\s*(record|record_here|postmortem)\s*\()");
  static const std::regex kEnabled(R"(\benabled\s*\(\s*\))");
  constexpr std::size_t kGuardWindow = 12;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (sup.allows("R4", i)) continue;
    // Include paths live inside string literals, so match on the raw line.
    if (std::regex_search(raw[i], kDirectInclude)) {
      out.push_back({rel_path.generic_string(), int(i) + 1, "R4",
                     "include \"telemetry/telemetry.hpp\" (the umbrella "
                     "header), not registry/tracer/flight_recorder "
                     "directly"});
    }
    if (std::regex_search(code[i], kEmission)) {
      bool guarded = false;
      const std::size_t lo = i >= kGuardWindow ? i - kGuardWindow : 0;
      for (std::size_t j = lo; j <= i && !guarded; ++j) {
        if (std::regex_search(code[j], kEnabled)) guarded = true;
      }
      if (!guarded) {
        out.push_back({rel_path.generic_string(), int(i) + 1, "R4",
                       "telemetry emission call without an enabled() check "
                       "within the preceding " +
                           std::to_string(kGuardWindow) + " lines"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R5: fault-injection gating.
// ---------------------------------------------------------------------------

// Per-line mask: true when the line sits inside a preprocessor region
// conditioned on KALMMIND_FAULTS.  Tracks the full #if nesting stack:
// `#ifdef KALMMIND_FAULTS` / `#if defined(KALMMIND_FAULTS) ...` open a
// gated region, `#else` flips it off (and flips the `#ifndef
// KALMMIND_FAULTS` inverse form on), `#endif` pops.  A line is gated when
// *any* enclosing frame is.
std::vector<char> faults_gate_mask(const std::vector<std::string>& code) {
  static const std::regex kIf(R"(^\s*#\s*(if|ifdef|ifndef)\b)");
  static const std::regex kElif(R"(^\s*#\s*elif\b)");
  static const std::regex kElse(R"(^\s*#\s*else\b)");
  static const std::regex kEndif(R"(^\s*#\s*endif\b)");
  static const std::regex kGated(
      R"(^\s*#\s*(ifdef\s+KALMMIND_FAULTS\b|if\s+defined\s*\(\s*KALMMIND_FAULTS\s*\)))");
  static const std::regex kInverted(R"(^\s*#\s*ifndef\s+KALMMIND_FAULTS\b)");

  struct Frame {
    bool active = false;   // current branch is the faults-ON branch
    bool on_else = false;  // the #else branch would be the faults-ON branch
  };
  std::vector<Frame> stack;
  std::vector<char> mask(code.size(), 0);
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    if (std::regex_search(line, kIf)) {
      Frame f;
      if (std::regex_search(line, kGated)) {
        f.active = true;
      } else if (std::regex_search(line, kInverted)) {
        f.on_else = true;
      }
      stack.push_back(f);
    } else if (std::regex_search(line, kElif)) {
      if (!stack.empty()) {
        stack.back().active =
            line.find("KALMMIND_FAULTS") != std::string::npos;
        stack.back().on_else = false;
      }
    } else if (std::regex_search(line, kElse)) {
      if (!stack.empty()) {
        stack.back().active = stack.back().on_else;
        stack.back().on_else = false;
      }
    } else if (std::regex_search(line, kEndif)) {
      if (!stack.empty()) stack.pop_back();
    }
    bool gated = false;
    for (const Frame& f : stack) gated = gated || f.active;
    mask[i] = gated ? 1 : 0;
  }
  return mask;
}

void check_faults_gate(const std::vector<std::string>& raw,
                       const std::vector<std::string>& code,
                       const std::filesystem::path& rel_path,
                       const Suppressions& sup, std::vector<Finding>& out) {
  // The include lives in a string literal, so it is matched on the raw
  // line; the API names are matched on stripped code so comments and
  // docstrings mentioning them stay silent.  The name list is deliberately
  // narrow — e.g. src/hls/fault.hpp models SEUs with its own ungated API
  // (flip_bit/inject_seu) and is a different, always-available subsystem.
  static const std::regex kFaultInclude(
      R"(#\s*include\s*"testing/fault_injection\.hpp")");
  static const std::regex kFaultApi(
      R"(\b(FaultInjector|FaultEvent|flip_word_bit|corrupt_raw|)"
      R"(corrupt_register|inject_measurement_faults|)"
      R"(fault_override_step_seconds)\b)");
  const std::vector<char> gated = faults_gate_mask(code);
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (gated[i] || sup.allows("R5", i)) continue;
    if (std::regex_search(raw[i], kFaultInclude) ||
        std::regex_search(code[i], kFaultApi)) {
      out.push_back({rel_path.generic_string(), int(i) + 1, "R5",
                     "fault-injection API outside a KALMMIND_FAULTS gate "
                     "(wrap in #if defined(KALMMIND_FAULTS))"});
    }
  }
}

// ---------------------------------------------------------------------------
// R6: suppression justification.
// ---------------------------------------------------------------------------

// Every allow()/allow-file() must carry a non-empty justification after the
// closing parenthesis (docs/static_analysis.md).  R6 itself cannot be
// suppressed — a waiver of the waiver rule would be circular.
void check_suppression_justification(const Suppressions& sup,
                                     const std::filesystem::path& rel_path,
                                     std::vector<Finding>& out) {
  for (const Suppression& s : sup.entries) {
    if (!s.justification.empty()) continue;
    const char* form = s.file_level ? "allow-file" : "allow";
    out.push_back({rel_path.generic_string(), int(s.line) + 1, "R6",
                   std::string("suppression '") + form +
                       "(...)' carries no justification after the closing "
                       "parenthesis"});
  }
}

bool has_segment(const std::filesystem::path& p, const char* segment) {
  for (const auto& part : p) {
    if (part == segment) return true;
  }
  return false;
}

}  // namespace

RuleSet rules_for_path(const std::filesystem::path& rel_path) {
  RuleSet rules;
  rules.hls_subset = has_segment(rel_path, "hlskernel");
  rules.fixed_literal = has_segment(rel_path, "fixedpoint");
  rules.telemetry_guard = !has_segment(rel_path, "telemetry");
  return rules;
}

std::vector<Finding> lint_file(const std::filesystem::path& rel_path,
                               const std::string& content) {
  const std::vector<std::string> raw = split_lines(content);
  const std::vector<std::string> code = strip_comments(raw);
  const Suppressions sup = parse_suppressions(raw);
  const RuleSet rules = rules_for_path(rel_path);

  std::vector<Finding> out;
  if (rules.hls_subset) check_hls_subset(code, rel_path, sup, out);
  if (rules.status_discipline)
    check_status_discipline(code, rel_path, sup, out);
  if (rules.fixed_literal) check_fixed_literals(code, rel_path, sup, out);
  if (rules.telemetry_guard)
    check_telemetry_guard(raw, code, rel_path, sup, out);
  if (rules.fault_gate) check_faults_gate(raw, code, rel_path, sup, out);
  if (rules.suppression_justification)
    check_suppression_justification(sup, rel_path, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> lint_dir(const std::filesystem::path& root,
                              const std::filesystem::path& dir,
                              std::vector<Finding>& out) {
  namespace fs = std::filesystem;
  for (const fs::path& p : collect_sources(dir)) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const fs::path rel = fs::relative(p, root);
    auto findings = lint_file(rel, ss.str());
    out.insert(out.end(), findings.begin(), findings.end());
  }
  return out;
}

std::vector<Finding> lint_tree(const std::filesystem::path& root) {
  std::vector<Finding> out;
  lint_dir(root, root / "src", out);
  lint_dir(root, root / "tools", out);
  return out;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::ostringstream ss;
  for (const Finding& f : findings) {
    ss << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  return ss.str();
}

std::string format_findings_json(const std::vector<Finding>& findings) {
  std::ostringstream ss;
  ss << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    ss << (i ? ",\n " : "\n ") << "{\"file\":\"" << json_escape(f.file)
       << "\",\"line\":" << f.line << ",\"rule\":\"" << json_escape(f.rule)
       << "\",\"message\":\"" << json_escape(f.message) << "\"}";
  }
  ss << (findings.empty() ? "]" : "\n]");
  ss << "\n";
  return ss.str();
}

std::string format_findings_github(const std::vector<Finding>& findings) {
  // GitHub Actions workflow commands: one ::error annotation per finding.
  // Message text must keep to one line; the file path is repo-relative,
  // which is what the annotation API expects.
  std::ostringstream ss;
  for (const Finding& f : findings) {
    std::string msg = f.message;
    std::replace(msg.begin(), msg.end(), '\n', ' ');
    ss << "::error file=" << f.file << ",line=" << f.line
       << ",title=kalmmind-lint " << f.rule << "::" << msg << "\n";
  }
  return ss.str();
}

}  // namespace kalmmind::lint
