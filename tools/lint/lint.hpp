// kalmmind-lint: repo-specific static analysis.
//
// Five rule families (see docs/static_analysis.md for the full catalog):
//
//   R1  hls-subset        src/hlskernel/ must stay inside the synthesizable
//                         C++ subset: no heap, no std:: containers, no
//                         exceptions, no virtual dispatch, no recursion, no
//                         unbounded loops.
//   R2  status-discipline Status-returning declarations carry
//                         [[nodiscard]]; no expression statement discards a
//                         `.check()` result.
//   R3  fixed-literal     src/fixedpoint/ code does not bury raw
//                         floating-point literals in integer/fixed
//                         expressions; a literal must sit in an explicit
//                         double context (`double`, `to_double`,
//                         `from_double`, `fixed_cast`) on the same line.
//   R4  telemetry-guard   outside src/telemetry/, include the umbrella
//                         header (telemetry/telemetry.hpp), and guard
//                         SpanTracer emission calls with an enabled()
//                         check nearby.
//   R5  fault-gate        the deterministic fault-injection API
//                         (testing/fault_injection.hpp and the hooks it
//                         drives) must sit inside a preprocessor region
//                         conditioned on KALMMIND_FAULTS, so release
//                         builds compile the chaos machinery out entirely.
//   R6  suppression-      every allow()/allow-file() comment carries a
//       justification     non-empty justification after the closing
//                         parenthesis; a waiver nobody can audit is a
//                         waiver nobody can trust.  R6 itself cannot be
//                         suppressed.
//
// Suppression syntax (inside a comment, scanned on the raw line):
//   code;  // kalmmind-lint: allow(R1) why it is fine — this line only
//   // kalmmind-lint: allow(R1) why it is fine        — on a comment-only
//                                                       line: the NEXT line
//   // kalmmind-lint: allow-file(R3) why it is fine   — whole file
//                                                       (first 40 lines)
// Multiple rules: allow(R1,R3).  The call-graph analyzer
// (kalmmind-rtcheck, see rtcheck.hpp) shares this syntax for its RT1-RT5
// waivers but additionally refuses bare waivers outright.
//
// The analysis is line-oriented and heuristic by design: it runs on every
// commit in well under a second, needs no compiler, and the rules are
// narrow enough that the repo carries zero suppressions for false
// positives.  Anything deeper belongs in clang-tidy (see .clang-tidy).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace kalmmind::lint {

struct Finding {
  std::string file;  // path as given (relative to the lint root)
  int line = 0;      // 1-based
  std::string rule;  // "R1".."R6"
  std::string message;
};

// Which rule families apply to a file, derived from its path segments.
struct RuleSet {
  bool hls_subset = false;        // R1: path contains a "hlskernel" segment
  bool status_discipline = true;  // R2: everywhere
  bool fixed_literal = false;     // R3: path contains a "fixedpoint" segment
  bool telemetry_guard = true;    // R4: off inside src/telemetry/
  bool fault_gate = true;         // R5: everywhere the linter runs
  bool suppression_justification = true;  // R6: everywhere
};

// Classify a (relative) path into the rules that apply to it.
RuleSet rules_for_path(const std::filesystem::path& rel_path);

// Lint one file's contents.  `rel_path` is used for rule selection and in
// the findings; `content` is the full text.
std::vector<Finding> lint_file(const std::filesystem::path& rel_path,
                               const std::string& content);

// Recursively lint every .hpp/.cpp/.h/.cc under `dir` (paths in findings
// are relative to `root`).  Skips build trees and fixture directories.
std::vector<Finding> lint_dir(const std::filesystem::path& root,
                              const std::filesystem::path& dir,
                              std::vector<Finding>& out);

// Lint the repo source tree (root/src and root/tools/lint).
std::vector<Finding> lint_tree(const std::filesystem::path& root);

// "path:line: [R1] message" per finding.
std::string format_findings(const std::vector<Finding>& findings);

// Machine-readable outputs shared by the lint and rtcheck CLIs: a JSON
// array of {file,line,rule,message} objects, and GitHub Actions ::error
// workflow commands (one annotation per finding).
std::string format_findings_json(const std::vector<Finding>& findings);
std::string format_findings_github(const std::vector<Finding>& findings);

}  // namespace kalmmind::lint
