// kalmmind-lint CLI.
//
//   kalmmind-lint [--root DIR] [paths...]
//
// With no paths, lints the repo source tree (DIR/src and DIR/tools).
// Explicit paths (files or directories, absolute or relative to --root)
// override the default walk — that is how the fixture tests drive it.
// Exit code: 0 clean, 1 findings, 2 usage/IO error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

void print_rules() {
  std::cout <<
      R"(kalmmind-lint rules:
  R1  hls-subset         src/hlskernel/ stays in the synthesizable subset:
                         no heap (new/delete/malloc), no heap-backed std::
                         types, no throw/try, no virtual, no goto, no
                         unbounded loops, no recursion.
  R2  status-discipline  Status-returning declarations are [[nodiscard]];
                         no statement discards a .check() result.
  R3  fixed-literal      src/fixedpoint/: floating-point literals need an
                         explicit double context (double/float/to_double/
                         from_double/fixed_cast) on the same line.
  R4  telemetry-guard    outside src/telemetry/: include the umbrella
                         telemetry/telemetry.hpp, and guard tracer
                         .complete/.counter/.instant calls with enabled().
  R5  fault-gate         fault-injection hooks stay behind KALMMIND_FAULTS
                         preprocessor regions.
  R6  suppression-       every allow()/allow-file() carries a non-empty
      justification      justification after the closing parenthesis.
                         R6 itself cannot be suppressed.
suppressions:
  // kalmmind-lint: allow(R1,R3) why it is fine     this line
  // kalmmind-lint: allow-file(R3) why it is fine   whole file
                                                    (first 40 lines)
)";
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  fs::path root = ".";
  bool quiet = false;
  bool json = false;
  bool github = false;
  std::vector<fs::path> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "kalmmind-lint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--github") {
      github = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: kalmmind-lint [--root DIR] [--list-rules] "
                   "[--json] [--github] [-q] [paths...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "kalmmind-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }

  if (!fs::exists(root)) {
    std::cerr << "kalmmind-lint: root " << root << " does not exist\n";
    return 2;
  }

  std::vector<kalmmind::lint::Finding> findings;
  if (paths.empty()) {
    findings = kalmmind::lint::lint_tree(root);
  } else {
    for (fs::path p : paths) {
      if (p.is_relative()) p = root / p;
      if (fs::is_directory(p)) {
        kalmmind::lint::lint_dir(root, p, findings);
      } else if (fs::is_regular_file(p)) {
        std::ifstream in(p, std::ios::binary);
        if (!in) {
          std::cerr << "kalmmind-lint: cannot read " << p << "\n";
          return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        auto file_findings =
            kalmmind::lint::lint_file(fs::relative(p, root), ss.str());
        findings.insert(findings.end(), file_findings.begin(),
                        file_findings.end());
      } else {
        std::cerr << "kalmmind-lint: no such path " << p << "\n";
        return 2;
      }
    }
  }

  if (json) {
    std::cout << kalmmind::lint::format_findings_json(findings);
  } else if (github) {
    std::cout << kalmmind::lint::format_findings_github(findings);
  } else if (!findings.empty()) {
    std::cout << kalmmind::lint::format_findings(findings);
  }
  if (!quiet && !json) {
    std::cout << "kalmmind-lint: " << findings.size() << " finding(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
