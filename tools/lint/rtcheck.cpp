#include "rtcheck.hpp"

#include <algorithm>
#include <deque>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "callgraph.hpp"
#include "source_model.hpp"

namespace kalmmind::lint {

namespace {

struct RtPattern {
  const char* rule;
  std::regex re;
  const char* what;  // short description used in the finding message
};

const std::vector<RtPattern>& rt_patterns() {
  static const std::vector<RtPattern> patterns = [] {
    std::vector<RtPattern> p;
    auto add = [&p](const char* rule, const char* re, const char* what) {
      p.push_back({rule, std::regex(re), what});
    };
    // RT1 allocation.  `\.resize\s*\(` cannot match `.resize_for_overwrite(`
    // because the char after `resize` must be whitespace-then-paren.
    add("RT1", R"(\bnew\b)", "operator new");
    add("RT1", R"(\bdelete\b)", "operator delete");
    add("RT1", R"(\b(?:malloc|calloc|realloc|free)\s*\()", "libc allocation");
    add("RT1", R"(\bmake_(?:unique|shared)\s*<)", "smart-pointer allocation");
    add("RT1", R"(\.push_back\s*\()", ".push_back()");
    add("RT1", R"(\.emplace_back\s*\()", ".emplace_back()");
    add("RT1", R"(\.emplace\s*\()", ".emplace()");
    add("RT1", R"(\.insert\s*\()", ".insert()");
    add("RT1", R"(\.reserve\s*\()", ".reserve()");
    add("RT1", R"(\.resize\s*\()", ".resize()");
    // RT2 locking.
    add("RT2", R"(\b(?:lock_guard|unique_lock|scoped_lock|shared_lock)\s*<)",
        "mutex guard");
    add("RT2", R"(\.(?:lock|try_lock)\s*\()", "explicit mutex acquisition");
    // RT3 exceptions.
    add("RT3", R"(\bthrow\b)", "throw expression");
    // RT4 blocking I/O.
    add("RT4", R"(\b(?:std\s*::\s*)?(?:cout|cerr|clog)\b)", "iostream object");
    add("RT4", R"(\b(?:printf|fprintf|fopen|fwrite|fputs)\s*\()",
        "stdio call");
    add("RT4", R"(\b(?:ofstream|ifstream|fstream|stringstream|ostringstream)\b)",
        "stream object");
    // RT4 environment/CPU probing.  getenv walks the environment block (and
    // races with setenv); CPUID-family probes serialize the pipeline.  Both
    // belong in load-time dispatch resolution (linalg/simd/dispatch.cpp),
    // never on a KALMMIND_REALTIME path.
    add("RT4", R"(\b(?:std\s*::\s*)?getenv\s*\()", "environment probe");
    add("RT4", R"(\b__builtin_cpu_(?:supports|init|is)\s*\()", "CPU probe");
    add("RT4", R"(\b__get_cpuid(?:_count|_max)?\s*\()", "CPUID intrinsic");
    // RT5 sleeps and waits.
    add("RT5", R"(this_thread\s*::\s*(?:sleep_for|sleep_until|yield)\b)",
        "thread sleep/yield");
    add("RT5", R"(\bcondition_variable\b)", "condition variable");
    add("RT5", R"(\.wait(?:_for|_until)?\s*\()", "blocking wait");
    return p;
  }();
  return patterns;
}

// One analyzed file: stripped code, raw-line suppressions, functions.
struct FileModel {
  std::string rel_path;
  std::vector<std::string> code;
  Suppressions sup;
};

struct Graph {
  std::vector<FileModel> files;
  std::vector<FunctionDef> funcs;  // file_index points into `files`
  // terminal name -> function ids sharing it
  std::map<std::string, std::vector<std::size_t>> by_name;
  // class/struct scope names seen anywhere — tells member candidates from
  // free-function candidates (out-of-line definitions included)
  std::set<std::string> class_names;
  // receiver variable name -> set of declared type short names seen for it
  // anywhere in the repo (smart pointers unwrapped to their element type)
  std::map<std::string, std::set<std::string>> decl_type;
};

const std::set<std::string>& decl_keywords() {
  static const std::set<std::string> kw = {
      "return",   "delete",  "throw",    "case",     "goto",    "break",
      "continue", "new",     "else",     "using",    "typedef", "typename",
      "template", "public",  "private",  "protected","friend",  "enum",
      "class",    "struct",  "union",    "namespace","operator","do",
      "if",       "while",   "for",      "switch",   "sizeof",  "co_return",
      "static_assert", "auto"};
  return kw;
}

// Harvest `Type name` declarations (members, locals, parameters) into the
// receiver-type map.  Name-based, not scoped: the repo's naming style
// (`health_`, `tracer`, `recorder`) is distinctive enough that a global
// map works; a name declared with several types keeps them all and the
// resolver unions over the possibilities.  Smart pointers are unwrapped
// (`shared_ptr<GainSchedule> s` binds s to GainSchedule) and `auto`
// declarations are resolved through the static-factory idiom
// (`auto& x = a::Type::global()` binds x to Type).
void harvest_decls(const std::vector<std::string>& code, Graph& g) {
  static const std::regex kDecl(
      R"(((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*(<[^;<>(){}]*>)?\s*(?:[&*]|\s)*([A-Za-z_]\w*)\s*[;,=)])");
  static const std::regex kFactory(
      R"(=\s*(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*::\s*[A-Za-z_]\w*\s*\()");
  static const std::regex kInner(
      R"(^\s*(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*))");
  for (const std::string& line : code) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::smatch& m = *it;
      // Only positions that can start a declaration: line start or just
      // after `(`/`,`/`;`/`{`, allowing cv/storage qualifiers in between —
      // rejects `a = b` and expression operands.
      std::size_t p = std::size_t(m.position(0));
      bool ok = false;
      for (;;) {
        while (p > 0 && (line[p - 1] == ' ' || line[p - 1] == '\t')) --p;
        if (p == 0 || line[p - 1] == '(' || line[p - 1] == ',' ||
            line[p - 1] == ';' || line[p - 1] == '{') {
          ok = true;
          break;
        }
        std::size_t e = p;
        while (p > 0 && (std::isalnum(static_cast<unsigned char>(
                             line[p - 1])) ||
                         line[p - 1] == '_')) {
          --p;
        }
        const std::string word = line.substr(p, e - p);
        if (word != "const" && word != "static" && word != "mutable" &&
            word != "constexpr" && word != "inline") {
          break;
        }
      }
      if (!ok) continue;
      std::string type = m[1].str();
      const std::size_t last_colon = type.rfind("::");
      if (last_colon != std::string::npos) type = type.substr(last_colon + 2);
      const std::string name = m[3].str();
      if (decl_keywords().count(type) || decl_keywords().count(name)) {
        if (type == "auto") {
          std::smatch fm;
          if (std::regex_search(line, fm, kFactory)) {
            g.decl_type[name].insert(fm[1].str());
          }
        }
        continue;
      }
      if (type == name) continue;  // `Foo Foo(` style noise
      if ((type == "shared_ptr" || type == "unique_ptr" ||
           type == "weak_ptr") &&
          m[2].matched) {
        const std::string tmpl = m[2].str().substr(1);  // drop '<'
        std::smatch im;
        if (std::regex_search(tmpl, im, kInner)) type = im[1].str();
      }
      g.decl_type[name].insert(type);
    }
  }
}

Graph build_graph(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Graph g;
  for (const auto& [rel, content] : sources) {
    FileModel fm;
    fm.rel_path = rel;
    const std::vector<std::string> raw = split_lines(content);
    fm.sup = parse_suppressions(raw);
    fm.code = strip_comments(raw);
    const std::size_t file_index = g.files.size();
    for (FunctionDef& fn :
         extract_functions(rel, fm.code, &g.class_names)) {
      fn.file_index = file_index;
      g.by_name[fn.short_name()].push_back(g.funcs.size());
      g.funcs.push_back(std::move(fn));
    }
    harvest_decls(fm.code, g);
    g.files.push_back(std::move(fm));
  }
  return g;
}

// A qualified call `a::b::f` resolves only to definitions whose qualified
// name *ends with* those segments — so `linalg::multiply_into` reaches
// `kalmmind::linalg::multiply_into` but not `kalmmind::linalg::naive::
// multiply_into`.
bool segs_match(const std::vector<std::string>& def,
                const std::vector<std::string>& call) {
  if (call.size() > def.size()) return false;
  return std::equal(call.rbegin(), call.rend(), def.rbegin());
}

// The class a definition belongs to ("" for free functions).
std::string class_of(const Graph& g, const FunctionDef& fn) {
  if (fn.segs.size() < 2) return "";
  const std::string& enclosing = fn.segs[fn.segs.size() - 2];
  return g.class_names.count(enclosing) ? enclosing : std::string();
}

// Resolve one call site from `caller` to candidate definitions.
//
// Baseline: union of every definition sharing the terminal name (virtual
// dispatch, overloads and shadowing all collapse to the union).  The
// union is then narrowed with whatever static context the spelling gives:
//   * qualified calls must suffix-match the spelled scopes;
//   * `this->f()` and unqualified `f()` prefer the caller's own class;
//   * `recv.f()` / `recv->f()` prefers the class that `recv`'s (uniquely
//     agreed) declared type names — `tracer.complete()` stays inside
//     SpanTracer instead of fanning out to every `complete`;
//   * a plain free call `f(x)` prefers free-function candidates over
//     members of unrelated classes.
// Every narrowing falls back to the union when it would empty the set, so
// smart-pointer indirection and virtual dispatch stay conservative.
std::vector<std::size_t> resolve(const Graph& g, const FunctionDef& caller,
                                 const CallSite& call) {
  std::vector<std::size_t> out;
  auto it = g.by_name.find(call.segs.back());
  if (it == g.by_name.end()) return out;
  for (std::size_t id : it->second) {
    if (segs_match(g.funcs[id].segs, call.segs)) out.push_back(id);
  }
  if (call.segs.size() > 1 || out.empty()) return out;

  auto narrow_to_class = [&](const std::string& cls) {
    if (cls.empty()) return false;
    std::vector<std::size_t> kept;
    for (std::size_t id : out) {
      if (class_of(g, g.funcs[id]) == cls) kept.push_back(id);
    }
    if (kept.empty()) return false;
    out = std::move(kept);
    return true;
  };

  if (call.member_access) {
    if (call.receiver == "this") {
      narrow_to_class(class_of(g, caller));
      return out;
    }
    auto ty = call.receiver.empty() ? g.decl_type.end()
                                    : g.decl_type.find(call.receiver);
    if (ty == g.decl_type.end()) return out;  // unknown receiver: union
    bool any_known_class = false;
    for (const std::string& t : ty->second) {
      if (g.class_names.count(t)) any_known_class = true;
    }
    if (any_known_class) {
      // Keep candidates in any of the receiver's declared classes.  The
      // narrowed set may legitimately be empty (method the parser missed):
      // stopping is still sound because the pattern scan covers the
      // receiver-side line and RTSan covers the body dynamically.
      std::vector<std::size_t> kept;
      for (std::size_t id : out) {
        if (ty->second.count(class_of(g, g.funcs[id]))) kept.push_back(id);
      }
      out = std::move(kept);
    } else if (!call.arrow) {
      // `.member(` on a type the repo never defines (std:: containers,
      // scalars): the textual pattern scan on this line is the check.
      out.clear();
    }
    // `->` through an unresolvable pointer alias keeps the union —
    // that is how `strategy_->invert_into` fans out to every strategy.
    return out;
  }

  // Plain `f(...)`: an implicit-this member call or a free function.
  if (narrow_to_class(class_of(g, caller))) return out;
  std::vector<std::size_t> free_fns;
  for (std::size_t id : out) {
    if (class_of(g, g.funcs[id]).empty()) free_fns.push_back(id);
  }
  if (!free_fns.empty()) out = std::move(free_fns);
  // Unqualified lookup only sees enclosing namespaces: from
  // linalg::symmetric_sandwich_into, `multiply_into(...)` finds
  // linalg::multiply_into, never linalg::naive::multiply_into.  Keep the
  // candidates whose namespace is an ancestor of the caller's; fall back
  // to the union when none is (ADL and using-declarations).
  std::vector<std::string> caller_ns(caller.segs.begin(),
                                     caller.segs.end() - 1);
  while (!caller_ns.empty() && g.class_names.count(caller_ns.back())) {
    caller_ns.pop_back();
  }
  std::vector<std::size_t> visible;
  for (std::size_t id : out) {
    const FunctionDef& def = g.funcs[id];
    std::vector<std::string> def_ns(def.segs.begin(), def.segs.end() - 1);
    while (!def_ns.empty() && g.class_names.count(def_ns.back())) {
      def_ns.pop_back();
    }
    if (def_ns.size() <= caller_ns.size() &&
        std::equal(def_ns.begin(), def_ns.end(), caller_ns.begin())) {
      visible.push_back(id);
    }
  }
  if (!visible.empty()) out = std::move(visible);
  return out;
}

struct WaiverKey {
  std::size_t file_index;
  const Suppression* sup;
  bool operator<(const WaiverKey& o) const {
    return std::tie(file_index, sup) < std::tie(o.file_index, o.sup);
  }
};

}  // namespace

RtReport rtcheck_sources(
    const std::vector<std::pair<std::string, std::string>>& files) {
  RtReport report;
  Graph g = build_graph(files);
  report.n_files = g.files.size();
  report.n_functions = g.funcs.size();

  // Multi-root BFS with parent pointers: the first visit wins, so every
  // reported chain is a shortest path from some annotated root.
  std::deque<std::size_t> queue;
  std::vector<bool> visited(g.funcs.size(), false);
  std::vector<std::size_t> parent(g.funcs.size(), std::size_t(-1));
  for (std::size_t id = 0; id < g.funcs.size(); ++id) {
    if (!g.funcs[id].realtime) continue;
    report.roots.push_back(g.funcs[id].display());
    visited[id] = true;
    queue.push_back(id);
  }

  auto chain_of = [&](std::size_t id) {
    std::vector<std::string> names;
    for (std::size_t cur = id; cur != std::size_t(-1); cur = parent[cur]) {
      names.push_back(g.funcs[cur].display());
    }
    std::reverse(names.begin(), names.end());
    std::string out;
    for (const std::string& n : names) {
      if (!out.empty()) out += " -> ";
      out += n;
    }
    return out;
  };

  std::set<WaiverKey> used_waivers;
  std::set<std::string> emitted;  // file:line:rule dedupe across chains

  while (!queue.empty()) {
    const std::size_t id = queue.front();
    queue.pop_front();
    ++report.n_reachable;
    const FunctionDef& fn = g.funcs[id];
    const FileModel& fm = g.files[fn.file_index];

    // Pattern scan over the body.
    for (std::size_t li = fn.body_begin; li <= fn.body_end &&
                                         li < fm.code.size();
         ++li) {
      const Suppression* waiver = fm.sup.find_prefix("RT", li);
      if (waiver != nullptr) {
        used_waivers.insert({fn.file_index, waiver});
        // A justified waiver exempts the whole line; a bare one is only
        // recorded so the finding below can call it out.
        if (!waiver->justification.empty()) continue;
      }
      for (const RtPattern& p : rt_patterns()) {
        if (!std::regex_search(fm.code[li], p.re)) continue;
        std::string key = fm.rel_path + ":" + std::to_string(li) + ":" +
                          p.rule;
        if (!emitted.insert(std::move(key)).second) continue;
        std::string msg = std::string(p.what) +
                          " on realtime path: " + chain_of(id);
        if (waiver != nullptr) {
          msg += " (waiver ignored: missing justification)";
        }
        report.findings.push_back(
            {fm.rel_path, int(li) + 1, p.rule, std::move(msg)});
      }
    }

    // Edge traversal.
    for (const CallSite& call : fn.calls) {
      const Suppression* waiver = fm.sup.find_prefix("RT", call.line);
      if (waiver != nullptr && !waiver->justification.empty()) {
        used_waivers.insert({fn.file_index, waiver});
        continue;  // the audited line's outgoing edges are exempt too
      }
      for (std::size_t callee : resolve(g, fn, call)) {
        if (visited[callee]) continue;
        visited[callee] = true;
        parent[callee] = id;
        queue.push_back(callee);
      }
    }
  }

  // Waiver audit: every RT-prefixed suppression in the analyzed set.
  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    for (const Suppression& s : g.files[fi].sup.entries) {
      std::string rules;
      bool rt = false;
      for (const std::string& r : s.rules) {
        if (r.rfind("RT", 0) == 0) rt = true;
        if (!rules.empty()) rules += ",";
        rules += r;
      }
      if (!rt) continue;
      WaiverRecord rec;
      rec.file = g.files[fi].rel_path;
      rec.line = int(s.line) + 1;
      rec.rules = std::move(rules);
      rec.justification = s.justification;
      rec.used = used_waivers.count({fi, &s}) > 0;
      report.waivers.push_back(std::move(rec));
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  std::sort(report.roots.begin(), report.roots.end());
  return report;
}

RtReport rtcheck_tree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> sources;
  // A repo checkout is analyzed under src/; a bare fixture directory
  // (tests, ad-hoc runs) is walked as-is.
  const fs::path tree = fs::exists(root / "src") ? root / "src" : root;
  for (const fs::path& p : collect_sources(tree)) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    sources.emplace_back(fs::relative(p, root).generic_string(), ss.str());
  }
  return rtcheck_sources(sources);
}

std::string rtcheck_rule_table() {
  return
      "RT1  allocation   new/delete, malloc-family, make_unique/make_shared,\n"
      "                  container growth (.push_back/.emplace/.insert/\n"
      "                  .reserve/.resize); resize_for_overwrite is exempt\n"
      "RT2  locking      lock_guard/unique_lock/scoped_lock/shared_lock,\n"
      "                  explicit .lock()/.try_lock()\n"
      "RT3  throw        any throw expression on the realtime path\n"
      "RT4  blocking-io  cout/cerr/clog, printf-family, fopen, fstream types,\n"
      "                  getenv, __builtin_cpu_supports/CPUID probes\n"
      "RT5  sleep/wait   this_thread sleeps/yield, condition_variable,\n"
      "                  .wait/.wait_for/.wait_until\n";
}

std::string format_waivers(const std::vector<WaiverRecord>& waivers) {
  std::string out;
  for (const WaiverRecord& w : waivers) {
    out += w.file + ":" + std::to_string(w.line) + ": allow(" + w.rules +
           ") ";
    out += w.justification.empty() ? "<missing justification>"
                                   : w.justification;
    if (!w.used) out += "  [unused]";
    out += "\n";
  }
  return out;
}

}  // namespace kalmmind::lint
