// kalmmind-rtcheck: transitive real-time safety verification.
//
// The line linter (lint.hpp) checks what a line *is*; rtcheck checks what
// a function *reaches*.  Functions whose signature carries the
// KALMMIND_REALTIME annotation (src/common/realtime.hpp) are the roots of
// a breadth-first walk over the heuristic call graph (callgraph.hpp), and
// every function reachable from a root must be free of the forbidden
// operation classes:
//
//   RT1  allocation   new/delete, malloc/calloc/realloc/free,
//                     make_unique/make_shared, and growth members
//                     (.push_back/.emplace/.insert/.reserve/.resize).
//                     resize_for_overwrite is exempt by name: its grow-once
//                     contract is the repo's sanctioned preallocation hook.
//   RT2  locking      lock_guard/unique_lock/scoped_lock/shared_lock and
//                     explicit .lock()/.try_lock().
//   RT3  throw        any throw expression (a realtime step must report
//                     failure through Status, not unwinding).
//   RT4  blocking-io  iostream objects, printf-family, fopen and fstream
//                     types.
//   RT5  sleep/wait   this_thread::sleep_for/sleep_until/yield,
//                     condition_variable, and .wait/.wait_for/.wait_until.
//
// Waivers reuse the lint suppression syntax but are stricter: an RT waiver
// with no justification is *ignored* and the finding is emitted anyway,
// tagged "(waiver ignored: missing justification)".  A justified RT waiver
// exempts its whole line — both the forbidden patterns on it and any call
// edges leaving it — because the written audit covers everything that line
// does (e.g. the flight recorder's stripe-lock line).
//
// Violations are reported with the full call chain from the root, e.g.
//   KalmanFilter::step -> linalg::multiply_into -> Matrix::resize
// so the finding is actionable without re-deriving reachability by hand.
//
// This is the static half of a two-sided contract; the dynamic half is
// clang's RealtimeSanitizer wired as the KALMMIND_RTSAN CMake option
// (docs/static_analysis.md), which catches what name-based resolution
// cannot see (operators, implicit copies, destructors).
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace kalmmind::lint {

// One RT waiver comment encountered during the walk, for `--list-waivers`
// audits: every entry should read as a reviewed design decision.
struct WaiverRecord {
  std::string file;
  int line = 0;  // 1-based
  std::string rules;  // comma-joined rule list as written
  std::string justification;  // empty == bare (not honored)
  bool used = false;  // sat on a line the walk actually crossed
};

struct RtReport {
  std::vector<Finding> findings;  // rule codes "RT1".."RT5"
  std::vector<WaiverRecord> waivers;
  std::vector<std::string> roots;  // display names of annotated roots
  std::size_t n_files = 0;
  std::size_t n_functions = 0;
  std::size_t n_reachable = 0;
};

// Analyze an in-memory set of {relative path, file contents} pairs.  This
// is the engine entry point the tests drive with seeded fixtures.
RtReport rtcheck_sources(
    const std::vector<std::pair<std::string, std::string>>& files);

// Analyze every lintable file under root/src (the realtime roots all live
// there; tests and tools are host-side by definition).
RtReport rtcheck_tree(const std::filesystem::path& root);

// Human-readable rule table for --list-rules.
std::string rtcheck_rule_table();

// "file:line: rule allow(...) justification [unused]" per waiver.
std::string format_waivers(const std::vector<WaiverRecord>& waivers);

}  // namespace kalmmind::lint
