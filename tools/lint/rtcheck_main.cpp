// kalmmind-rtcheck CLI.
//
//   kalmmind-rtcheck [--root DIR] [--json] [--github] [--list-rules]
//                    [--list-roots] [--list-waivers] [-q]
//
// Walks DIR/src (or DIR itself when it has no src/), finds every
// function annotated KALMMIND_REALTIME, and
// verifies nothing reachable from those roots performs a forbidden
// operation (RT1-RT5, see rtcheck.hpp).  Exit code: 0 clean, 1 findings,
// 2 usage/IO error.
#include <filesystem>
#include <iostream>
#include <string>

#include "lint.hpp"
#include "rtcheck.hpp"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  fs::path root = ".";
  bool quiet = false;
  bool json = false;
  bool github = false;
  bool list_roots = false;
  bool list_waivers = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "kalmmind-rtcheck: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      std::cout << kalmmind::lint::rtcheck_rule_table();
      return 0;
    } else if (arg == "--list-roots") {
      list_roots = true;
    } else if (arg == "--list-waivers") {
      list_waivers = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--github") {
      github = true;
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: kalmmind-rtcheck [--root DIR] [--list-rules] "
                   "[--list-roots] [--list-waivers] [--json] [--github] "
                   "[-q]\n";
      return 0;
    } else {
      std::cerr << "kalmmind-rtcheck: unknown argument " << arg << "\n";
      return 2;
    }
  }

  // A repo checkout is analyzed under root/src; a bare directory of
  // sources (fixtures, ad-hoc runs) is walked as-is (rtcheck_tree).
  if (!fs::exists(root)) {
    std::cerr << "kalmmind-rtcheck: " << root << " does not exist\n";
    return 2;
  }

  const kalmmind::lint::RtReport report = kalmmind::lint::rtcheck_tree(root);

  if (list_roots) {
    for (const std::string& r : report.roots) std::cout << r << "\n";
    return 0;
  }
  if (list_waivers) {
    std::cout << kalmmind::lint::format_waivers(report.waivers);
    return 0;
  }

  if (json) {
    std::cout << kalmmind::lint::format_findings_json(report.findings);
  } else if (github) {
    std::cout << kalmmind::lint::format_findings_github(report.findings);
  } else if (!report.findings.empty()) {
    std::cout << kalmmind::lint::format_findings(report.findings);
  }
  if (!quiet && !json) {
    std::cout << "kalmmind-rtcheck: " << report.roots.size() << " root(s), "
              << report.n_reachable << "/" << report.n_functions
              << " function(s) on the realtime path, "
              << report.findings.size() << " finding(s)\n";
  }
  return report.findings.empty() ? 0 : 1;
}
