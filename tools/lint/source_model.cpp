#include "source_model.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace kalmmind::lint {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

std::vector<std::string> strip_comments(const std::vector<std::string>& raw) {
  enum class State { kCode, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const std::string& line : raw) {
    std::string s(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            i = line.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == '"') {
            s[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            s[i] = '\'';
            state = State::kChar;
          } else {
            s[i] = c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            s[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            s[i] = '\'';
            state = State::kCode;
          }
          break;
      }
    }
    // A // comment or an unterminated literal ends with the line for our
    // purposes (line continuations in macros are rare enough to ignore).
    if (state == State::kString || state == State::kChar) state = State::kCode;
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Parse one `allow(...)` occurrence: the rule list inside the parens plus
// the justification text after the closing paren (stripped of a trailing
// block-comment close).
bool parse_allow(const std::string& line, std::size_t paren_open,
                 Suppression& out) {
  const std::size_t close = line.find(')', paren_open);
  if (close == std::string::npos) return false;
  std::string inside = line.substr(paren_open + 1, close - paren_open - 1);
  std::istringstream iss(inside);
  std::string token;
  while (std::getline(iss, token, ',')) {
    token.erase(std::remove_if(token.begin(), token.end(), ::isspace),
                token.end());
    if (!token.empty()) out.rules.insert(token);
  }
  std::string rest = line.substr(close + 1);
  if (std::size_t star = rest.rfind("*/"); star != std::string::npos) {
    rest = rest.substr(0, star);
  }
  out.justification = trim(rest);
  return true;
}

}  // namespace

bool Suppressions::allows(const std::string& rule, std::size_t line_idx,
                          bool require_justification) const {
  for (const Suppression& s : entries) {
    if (!s.rules.count(rule)) continue;
    if (!s.file_level && s.line != line_idx) continue;
    if (require_justification && s.justification.empty()) continue;
    return true;
  }
  return false;
}

const Suppression* Suppressions::find(const std::string& rule,
                                      std::size_t line_idx) const {
  const Suppression* bare = nullptr;
  for (const Suppression& s : entries) {
    if (!s.rules.count(rule)) continue;
    if (!s.file_level && s.line != line_idx) continue;
    if (!s.justification.empty()) return &s;
    if (bare == nullptr) bare = &s;
  }
  return bare;
}

const Suppression* Suppressions::find_prefix(const std::string& prefix,
                                             std::size_t line_idx) const {
  const Suppression* bare = nullptr;
  for (const Suppression& s : entries) {
    if (!s.file_level && s.line != line_idx) continue;
    bool named = false;
    for (const std::string& r : s.rules) {
      if (r.rfind(prefix, 0) == 0) {
        named = true;
        break;
      }
    }
    if (!named) continue;
    if (!s.justification.empty()) return &s;
    if (bare == nullptr) bare = &s;
  }
  return bare;
}

Suppressions parse_suppressions(const std::vector<std::string>& raw) {
  Suppressions sup;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& line = raw[i];
    // A waiver on a comment-only line governs the NEXT line, so long
    // justifications don't force 200-column code lines; a trailing waiver
    // governs its own line (the original form).
    const std::size_t first = line.find_first_not_of(" \t");
    const bool comment_only =
        first != std::string::npos && line[first] == '/' &&
        first + 1 < line.size() &&
        (line[first + 1] == '/' || line[first + 1] == '*');
    if (std::size_t p = line.find("kalmmind-lint: allow-file(");
        p != std::string::npos && i < 40) {
      Suppression s;
      s.file_level = true;
      s.line = i;
      if (parse_allow(line, line.find('(', p), s)) {
        sup.entries.push_back(std::move(s));
      }
    } else if (std::size_t q = line.find("kalmmind-lint: allow(");
               q != std::string::npos) {
      Suppression s;
      s.line = comment_only ? i + 1 : i;
      if (parse_allow(line, line.find('(', q), s)) {
        sup.entries.push_back(std::move(s));
      }
    }
  }
  return sup;
}

bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (auto it = fs::recursive_directory_iterator(dir);
       it != fs::recursive_directory_iterator(); ++it) {
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory() &&
        (name == "fixtures" || name == ".git" ||
         name.rfind("build", 0) == 0)) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable_extension(p)) files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace kalmmind::lint
