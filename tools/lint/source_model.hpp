// Shared source-model machinery for the kalmmind static analyzers
// (kalmmind-lint's line rules and kalmmind-rtcheck's call-graph pass).
//
// Both tools work on the same textual model of a C++ translation unit:
//   * raw lines — exactly as read, used for suppression comments and for
//     patterns that live inside string literals (#include paths);
//   * code lines — comments and string/char literal *contents* replaced by
//     spaces (delimiters kept) so expressions stay recognizable and line
//     numbers stable;
//   * suppressions — `kalmmind-lint: allow(R1,RT2) justification` comments,
//     parsed with their justification text so rule R6 and the rtcheck
//     waiver audit can enforce the justification contract.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace kalmmind::lint {

// Split on '\n'; a trailing newline does not produce an empty final line.
std::vector<std::string> split_lines(const std::string& text);

// State machine over the whole file; comment and literal contents become
// spaces, delimiters are kept.
std::vector<std::string> strip_comments(const std::vector<std::string>& raw);

// One `kalmmind-lint: allow(...)` / `allow-file(...)` comment.
struct Suppression {
  std::set<std::string> rules;
  std::string justification;  // trimmed text after the closing paren
  bool file_level = false;    // allow-file(...) in the first 40 lines
  std::size_t line = 0;       // 0-based line index of the comment
};

struct Suppressions {
  std::vector<Suppression> entries;

  // Does any suppression (file-level or on `line_idx`) cover `rule`?
  // `require_justification` is the rtcheck contract: a bare waiver does
  // not count.
  bool allows(const std::string& rule, std::size_t line_idx,
              bool require_justification = false) const;

  // The suppression that covers (rule, line_idx), or nullptr.  Justified
  // entries win over bare ones so rtcheck can honor a justified line
  // waiver even when a bare one also matches.
  const Suppression* find(const std::string& rule,
                          std::size_t line_idx) const;

  // Any suppression naming a rule with prefix `prefix` on this line
  // (rtcheck skips a whole line covered by a justified RT waiver).
  const Suppression* find_prefix(const std::string& prefix,
                                 std::size_t line_idx) const;
};

Suppressions parse_suppressions(const std::vector<std::string>& raw);

// .hpp/.cpp/.h/.cc
bool lintable_extension(const std::filesystem::path& p);

// Recursively collect lintable files under `dir`, sorted, skipping build
// trees, fixture directories, and .git.
std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& dir);

// Minimal JSON string escaping for the --json finding outputs.
std::string json_escape(const std::string& s);

}  // namespace kalmmind::lint
