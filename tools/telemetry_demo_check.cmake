# Asserting smoke test for `kalmmind telemetry-demo` + `kalmmind blackbox`
# (ctest: cli_telemetry_demo_counters).
#
# Runs the demo with --blackbox-out and asserts the PR6 batched-serving
# counters come out nonzero and deterministic (2 configs x 2 sessions =>
# 2 gain-cache misses + 2 hits, 2 batch groups, 4 batched sessions), that
# the flight recorder journaled events, and that the postmortem JSONL the
# demo writes is readable by the blackbox subcommand.  When the binary was
# built with KALMMIND_TELEMETRY=OFF the demo prints a "compiled out"
# marker and the counter assertions are skipped (the recorder is a no-op).
#
# Inputs: -D CLI=<kalmmind binary> -D OUT_DIR=<scratch directory>
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -D CLI=... -D OUT_DIR=... -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
execute_process(
  COMMAND "${CLI}" --blackbox-out "${OUT_DIR}"
          telemetry-demo --dataset motor --iterations 15
  WORKING_DIRECTORY "${OUT_DIR}"
  OUTPUT_VARIABLE demo_out
  ERROR_VARIABLE demo_err
  RESULT_VARIABLE demo_rc)
if(NOT demo_rc EQUAL 0)
  message(FATAL_ERROR "telemetry-demo failed (rc=${demo_rc}):\n${demo_out}\n${demo_err}")
endif()

if(demo_out MATCHES "compiled out")
  message(STATUS "KALMMIND_TELEMETRY=OFF build: counter assertions skipped")
  return()
endif()

if(NOT demo_out MATCHES "batched_sessions=4 batch_groups=2 gain_cache hits=2 misses=2 evictions=0")
  message(FATAL_ERROR "batching counters wrong or missing:\n${demo_out}")
endif()
if(demo_out MATCHES "blackbox   : 0 events journaled")
  message(FATAL_ERROR "flight recorder journaled nothing:\n${demo_out}")
endif()
if(NOT demo_out MATCHES "wrote postmortem ([^\n]+)")
  message(FATAL_ERROR "demo wrote no postmortem dump:\n${demo_out}")
endif()
set(dump "${CMAKE_MATCH_1}")

execute_process(
  COMMAND "${CLI}" blackbox "${dump}" --kind batch_join
  OUTPUT_VARIABLE bb_out
  ERROR_VARIABLE bb_err
  RESULT_VARIABLE bb_rc)
if(NOT bb_rc EQUAL 0)
  message(FATAL_ERROR "blackbox subcommand failed (rc=${bb_rc}):\n${bb_out}\n${bb_err}")
endif()
if(NOT bb_out MATCHES "batch_join")
  message(FATAL_ERROR "blackbox output missing the batch_join event:\n${bb_out}")
endif()
message(STATUS "telemetry-demo counters + blackbox dump verified")
